let layer_offset spec l =
  let acc = ref 0 in
  for l' = 0 to l - 1 do
    let r, c = Grid_spec.layer_dims spec l' in
    acc := !acc + (r * c)
  done;
  !acc

let node_at spec ~layer ~row ~col =
  let rows, cols = Grid_spec.layer_dims spec layer in
  if row < 0 || row >= rows || col < 0 || col >= cols then
    invalid_arg (Printf.sprintf "Grid_gen.node_at: (%d,%d) out of %dx%d" row col rows cols);
  layer_offset spec layer + (row * cols) + col

let position_of_node spec node =
  (* Inverse of node_at: (layer, row, col). *)
  let rec go l off =
    if l >= spec.Grid_spec.layers then invalid_arg "Grid_gen: node id out of range"
    else begin
      let rows, cols = Grid_spec.layer_dims spec l in
      let count = rows * cols in
      if node < off + count then begin
        let local = node - off in
        (l, local / cols, local mod cols)
      end
      else go (l + 1) (off + count)
    end
  in
  go 0 0

let region_of_node spec node =
  let l, row, col = position_of_node spec node in
  (* Map up-layer coordinates down to bottom-layer scale. *)
  let scale = Grid_spec.layer_shrink spec l in
  let row0 = Int.min (spec.Grid_spec.rows - 1) (row * scale) in
  let col0 = Int.min (spec.Grid_spec.cols - 1) (col * scale) in
  let ry = Int.max 1 (spec.Grid_spec.rows / spec.Grid_spec.regions_y) in
  let rx = Int.max 1 (spec.Grid_spec.cols / spec.Grid_spec.regions_x) in
  let iy = Int.min (spec.Grid_spec.regions_y - 1) (row0 / ry) in
  let ix = Int.min (spec.Grid_spec.regions_x - 1) (col0 / rx) in
  (iy * spec.Grid_spec.regions_x) + ix

let center_node spec =
  node_at spec ~layer:0 ~row:(spec.Grid_spec.rows / 2) ~col:(spec.Grid_spec.cols / 2)

let generate (spec : Grid_spec.t) =
  let rng = Prob.Rng.create ~seed:spec.seed () in
  let resistors = ref [] and capacitors = ref [] in
  let isources = ref [] and vsources = ref [] in
  (* Mesh wires per layer. *)
  for l = 0 to spec.layers - 1 do
    let rows, cols = Grid_spec.layer_dims spec l in
    let seg =
      spec.seg_res
      *. ((float_of_int spec.coarsening *. spec.layer_res_scale) ** float_of_int l)
    in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let here = node_at spec ~layer:l ~row:r ~col:c in
        if c + 1 < cols then
          resistors :=
            { Circuit.rnode1 = here; rnode2 = node_at spec ~layer:l ~row:r ~col:(c + 1);
              ohms = seg; rkind = Circuit.Metal }
            :: !resistors;
        if r + 1 < rows then
          resistors :=
            { Circuit.rnode1 = here; rnode2 = node_at spec ~layer:l ~row:(r + 1) ~col:c;
              ohms = seg; rkind = Circuit.Metal }
            :: !resistors
      done
    done
  done;
  (* Vias: every node of layer l+1 drops to the matching node of layer l. *)
  for l = 0 to spec.layers - 2 do
    let rows_lo, cols_lo = Grid_spec.layer_dims spec l in
    let rows_hi, cols_hi = Grid_spec.layer_dims spec (l + 1) in
    for r = 0 to rows_hi - 1 do
      for c = 0 to cols_hi - 1 do
        let r_lo = Int.min (rows_lo - 1) (r * spec.coarsening) in
        let c_lo = Int.min (cols_lo - 1) (c * spec.coarsening) in
        resistors :=
          { Circuit.rnode1 = node_at spec ~layer:(l + 1) ~row:r ~col:c;
            rnode2 = node_at spec ~layer:l ~row:r_lo ~col:c_lo;
            ohms = spec.via_res; rkind = Circuit.Via }
          :: !resistors
      done
    done
  done;
  (* Supply pads on the top layer, a regular array every pad_pitch nodes. *)
  let top = spec.layers - 1 in
  let rows_t, cols_t = Grid_spec.layer_dims spec top in
  for r = 0 to rows_t - 1 do
    for c = 0 to cols_t - 1 do
      if r mod spec.pad_pitch = 0 && c mod spec.pad_pitch = 0 then
        vsources :=
          { Circuit.vnode = node_at spec ~layer:top ~row:r ~col:c;
            volts = spec.vdd; series_ohms = spec.pad_res }
          :: !vsources
    done
  done;
  (* Load capacitance on every bottom node, split into gate / fixed parts. *)
  let gate_cap = spec.gate_cap_fraction *. spec.node_cap in
  let fixed_cap = spec.node_cap -. gate_cap in
  for r = 0 to spec.rows - 1 do
    for c = 0 to spec.cols - 1 do
      let here = node_at spec ~layer:0 ~row:r ~col:c in
      if gate_cap > 0.0 then
        capacitors :=
          { Circuit.cnode1 = here; cnode2 = Circuit.ground; farads = gate_cap;
            ckind = Circuit.Gate }
          :: !capacitors;
      if fixed_cap > 0.0 then
        capacitors :=
          { Circuit.cnode1 = here; cnode2 = Circuit.ground; farads = fixed_cap;
            ckind = Circuit.Fixed }
          :: !capacitors
    done
  done;
  (* Functional blocks: clusters of current sources on the bottom layer. *)
  let bs = Int.min spec.block_size (Int.min spec.rows spec.cols) in
  let per_node_peak = spec.block_peak /. float_of_int (bs * bs) in
  for _ = 1 to spec.block_count do
    let r0 = Prob.Rng.int rng (Int.max 1 (spec.rows - bs + 1)) in
    let c0 = Prob.Rng.int rng (Int.max 1 (spec.cols - bs + 1)) in
    for dr = 0 to bs - 1 do
      for dc = 0 to bs - 1 do
        let node = node_at spec ~layer:0 ~row:(r0 + dr) ~col:(c0 + dc) in
        let wave =
          Waveform.random_activity rng ~peak:per_node_peak ~period:spec.clock_period
            ~duty:spec.duty ~cycles:spec.sim_cycles
        in
        isources :=
          { Circuit.inode = node; wave; region = region_of_node spec node } :: !isources
      done
    done
  done;
  Circuit.make ~num_nodes:(Grid_spec.node_count spec) ~resistors:!resistors
    ~capacitors:!capacitors ~isources:!isources ~vsources:!vsources ()

(* --- Streaming MNA assembly ---------------------------------------------

   [generate] materializes every element as a list cell plus a record
   (~500 MB of live heap at 10^6 nodes) only for [Mna.assemble] to fold the
   lists straight back down into CSC matrices.  [stream_mna] produces the
   same MNA system by stamping each conductance directly into
   [Sparse.of_stamps]: peak memory is one 16-byte slot per raw stamp, and
   the element lists never exist. *)

(* Per-layer geometry flattened into plain arrays so the stamping kernels
   below recompute no offsets and touch no tuples. *)
type geom = { glayers : int; grows : int array; gcols : int array; goff : int array }

let geom_of_spec (spec : Grid_spec.t) =
  let layers = spec.layers in
  let grows = Array.make layers 0 and gcols = Array.make layers 0 in
  let goff = Array.make (layers + 1) 0 in
  for l = 0 to layers - 1 do
    let r, c = Grid_spec.layer_dims spec l in
    grows.(l) <- r;
    gcols.(l) <- c;
    goff.(l + 1) <- goff.(l) + (r * c)
  done;
  { glayers = layers; grows; gcols; goff }

(* Mesh wires of every layer plus the via stitching, one replayable sweep.
   Stamp order per element matches [Sparse_builder.stamp_conductance]. *)
let[@opera.hot] stamp_wires (spec : Grid_spec.t) geom segs stamp =
  for l = 0 to geom.glayers - 1 do
    let rows = geom.grows.(l) and cols = geom.gcols.(l) in
    let base = geom.goff.(l) in
    let g = 1.0 /. segs.(l) in
    for r = 0 to rows - 1 do
      let row_base = base + (r * cols) in
      for c = 0 to cols - 1 do
        let here = row_base + c in
        if c + 1 < cols then begin
          let there = here + 1 in
          stamp here here g;
          stamp there there g;
          stamp here there (-.g);
          stamp there here (-.g)
        end;
        if r + 1 < rows then begin
          let there = here + cols in
          stamp here here g;
          stamp there there g;
          stamp here there (-.g);
          stamp there here (-.g)
        end
      done
    done
  done;
  let gv = 1.0 /. spec.via_res in
  for l = 0 to geom.glayers - 2 do
    let rows_lo = geom.grows.(l) and cols_lo = geom.gcols.(l) in
    let rows_hi = geom.grows.(l + 1) and cols_hi = geom.gcols.(l + 1) in
    for r = 0 to rows_hi - 1 do
      let r_lo = Int.min (rows_lo - 1) (r * spec.coarsening) in
      let hi_row = geom.goff.(l + 1) + (r * cols_hi) in
      let lo_row = geom.goff.(l) + (r_lo * cols_lo) in
      for c = 0 to cols_hi - 1 do
        let c_lo = Int.min (cols_lo - 1) (c * spec.coarsening) in
        let hi = hi_row + c and lo = lo_row + c_lo in
        stamp hi hi gv;
        stamp lo lo gv;
        stamp hi lo (-.gv);
        stamp lo hi (-.gv)
      done
    done
  done

(* Norton pad conductances on the top layer. *)
let[@opera.hot] stamp_pads (spec : Grid_spec.t) geom stamp =
  let top = geom.glayers - 1 in
  let rows = geom.grows.(top) and cols = geom.gcols.(top) in
  let base = geom.goff.(top) in
  let g = 1.0 /. spec.pad_res in
  for r = 0 to rows - 1 do
    if r mod spec.pad_pitch = 0 then begin
      let row_base = base + (r * cols) in
      for c = 0 to cols - 1 do
        if c mod spec.pad_pitch = 0 then stamp (row_base + c) (row_base + c) g
      done
    end
  done

(* Load capacitance: a diagonal entry on every bottom-layer node. *)
let[@opera.hot] stamp_bottom_diag geom v stamp =
  if v > 0.0 then
    for i = 0 to geom.goff.(1) - 1 do
      stamp i i v
    done

let stream_mna ?metrics (spec : Grid_spec.t) =
  if spec.pad_res <= 0.0 then
    invalid_arg "Grid_gen.stream_mna: ideal pad (zero series resistance); use Mna.Full.assemble";
  let geom = geom_of_spec spec in
  let n = geom.goff.(geom.glayers) in
  let segs =
    Array.init geom.glayers (fun l ->
        spec.seg_res
        *. ((float_of_int spec.coarsening *. spec.layer_res_scale) ** float_of_int l))
  in
  let g_wire =
    Linalg.Sparse.of_stamps ?metrics ~nrows:n ~ncols:n (fun stamp ->
        stamp_wires spec geom segs stamp)
  in
  let g_pad =
    Linalg.Sparse.of_stamps ?metrics ~nrows:n ~ncols:n (fun stamp -> stamp_pads spec geom stamp)
  in
  let gate_cap = spec.gate_cap_fraction *. spec.node_cap in
  let fixed_cap = spec.node_cap -. gate_cap in
  let c_gate =
    Linalg.Sparse.of_stamps ?metrics ~nrows:n ~ncols:n (fun stamp ->
        stamp_bottom_diag geom gate_cap stamp)
  in
  let c_fixed =
    Linalg.Sparse.of_stamps ?metrics ~nrows:n ~ncols:n (fun stamp ->
        stamp_bottom_diag geom fixed_cap stamp)
  in
  (* Norton pad injection, filled outside the replayed closures. *)
  let u_pad = Linalg.Vec.create n in
  let top = geom.glayers - 1 in
  let rows_t = geom.grows.(top) and cols_t = geom.gcols.(top) in
  let base_t = geom.goff.(top) in
  let gp = 1.0 /. spec.pad_res in
  for r = 0 to rows_t - 1 do
    if r mod spec.pad_pitch = 0 then
      for c = 0 to cols_t - 1 do
        if c mod spec.pad_pitch = 0 then begin
          let p = base_t + (r * cols_t) + c in
          u_pad.(p) <- u_pad.(p) +. (gp *. spec.vdd)
        end
      done
  done;
  (* Block current sources are RNG-dependent, so they are built exactly once
     (never inside a replayed stamping closure).  The draw order matches
     [generate], so the activity profiles are bitwise those of the circuit
     path. *)
  let rng = Prob.Rng.create ~seed:spec.seed () in
  let isources = ref [] in
  let bs = Int.min spec.block_size (Int.min spec.rows spec.cols) in
  let per_node_peak = spec.block_peak /. float_of_int (bs * bs) in
  for _ = 1 to spec.block_count do
    let r0 = Prob.Rng.int rng (Int.max 1 (spec.rows - bs + 1)) in
    let c0 = Prob.Rng.int rng (Int.max 1 (spec.cols - bs + 1)) in
    for dr = 0 to bs - 1 do
      for dc = 0 to bs - 1 do
        let node = ((r0 + dr) * geom.gcols.(0)) + (c0 + dc) in
        let wave =
          Waveform.random_activity rng ~peak:per_node_peak ~period:spec.clock_period
            ~duty:spec.duty ~cycles:spec.sim_cycles
        in
        isources :=
          { Circuit.inode = node; wave; region = region_of_node spec node } :: !isources
      done
    done
  done;
  { Mna.n; g_wire; g_pad; c_gate; c_fixed; u_pad; isources = Array.of_list !isources }
