let layer_offset spec l =
  let acc = ref 0 in
  for l' = 0 to l - 1 do
    let r, c = Grid_spec.layer_dims spec l' in
    acc := !acc + (r * c)
  done;
  !acc

let node_at spec ~layer ~row ~col =
  let rows, cols = Grid_spec.layer_dims spec layer in
  if row < 0 || row >= rows || col < 0 || col >= cols then
    invalid_arg (Printf.sprintf "Grid_gen.node_at: (%d,%d) out of %dx%d" row col rows cols);
  layer_offset spec layer + (row * cols) + col

let position_of_node spec node =
  (* Inverse of node_at: (layer, row, col). *)
  let rec go l off =
    if l >= spec.Grid_spec.layers then invalid_arg "Grid_gen: node id out of range"
    else begin
      let rows, cols = Grid_spec.layer_dims spec l in
      let count = rows * cols in
      if node < off + count then begin
        let local = node - off in
        (l, local / cols, local mod cols)
      end
      else go (l + 1) (off + count)
    end
  in
  go 0 0

let region_of_node spec node =
  let l, row, col = position_of_node spec node in
  (* Map up-layer coordinates down to bottom-layer scale. *)
  let scale = int_of_float (float_of_int spec.Grid_spec.coarsening ** float_of_int l) in
  let row0 = Int.min (spec.Grid_spec.rows - 1) (row * scale) in
  let col0 = Int.min (spec.Grid_spec.cols - 1) (col * scale) in
  let ry = Int.max 1 (spec.Grid_spec.rows / spec.Grid_spec.regions_y) in
  let rx = Int.max 1 (spec.Grid_spec.cols / spec.Grid_spec.regions_x) in
  let iy = Int.min (spec.Grid_spec.regions_y - 1) (row0 / ry) in
  let ix = Int.min (spec.Grid_spec.regions_x - 1) (col0 / rx) in
  (iy * spec.Grid_spec.regions_x) + ix

let center_node spec =
  node_at spec ~layer:0 ~row:(spec.Grid_spec.rows / 2) ~col:(spec.Grid_spec.cols / 2)

let generate (spec : Grid_spec.t) =
  let rng = Prob.Rng.create ~seed:spec.seed () in
  let resistors = ref [] and capacitors = ref [] in
  let isources = ref [] and vsources = ref [] in
  (* Mesh wires per layer. *)
  for l = 0 to spec.layers - 1 do
    let rows, cols = Grid_spec.layer_dims spec l in
    let seg =
      spec.seg_res
      *. ((float_of_int spec.coarsening *. spec.layer_res_scale) ** float_of_int l)
    in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let here = node_at spec ~layer:l ~row:r ~col:c in
        if c + 1 < cols then
          resistors :=
            { Circuit.rnode1 = here; rnode2 = node_at spec ~layer:l ~row:r ~col:(c + 1);
              ohms = seg; rkind = Circuit.Metal }
            :: !resistors;
        if r + 1 < rows then
          resistors :=
            { Circuit.rnode1 = here; rnode2 = node_at spec ~layer:l ~row:(r + 1) ~col:c;
              ohms = seg; rkind = Circuit.Metal }
            :: !resistors
      done
    done
  done;
  (* Vias: every node of layer l+1 drops to the matching node of layer l. *)
  for l = 0 to spec.layers - 2 do
    let rows_lo, cols_lo = Grid_spec.layer_dims spec l in
    let rows_hi, cols_hi = Grid_spec.layer_dims spec (l + 1) in
    for r = 0 to rows_hi - 1 do
      for c = 0 to cols_hi - 1 do
        let r_lo = Int.min (rows_lo - 1) (r * spec.coarsening) in
        let c_lo = Int.min (cols_lo - 1) (c * spec.coarsening) in
        resistors :=
          { Circuit.rnode1 = node_at spec ~layer:(l + 1) ~row:r ~col:c;
            rnode2 = node_at spec ~layer:l ~row:r_lo ~col:c_lo;
            ohms = spec.via_res; rkind = Circuit.Via }
          :: !resistors
      done
    done
  done;
  (* Supply pads on the top layer, a regular array every pad_pitch nodes. *)
  let top = spec.layers - 1 in
  let rows_t, cols_t = Grid_spec.layer_dims spec top in
  for r = 0 to rows_t - 1 do
    for c = 0 to cols_t - 1 do
      if r mod spec.pad_pitch = 0 && c mod spec.pad_pitch = 0 then
        vsources :=
          { Circuit.vnode = node_at spec ~layer:top ~row:r ~col:c;
            volts = spec.vdd; series_ohms = spec.pad_res }
          :: !vsources
    done
  done;
  (* Load capacitance on every bottom node, split into gate / fixed parts. *)
  let gate_cap = spec.gate_cap_fraction *. spec.node_cap in
  let fixed_cap = spec.node_cap -. gate_cap in
  for r = 0 to spec.rows - 1 do
    for c = 0 to spec.cols - 1 do
      let here = node_at spec ~layer:0 ~row:r ~col:c in
      if gate_cap > 0.0 then
        capacitors :=
          { Circuit.cnode1 = here; cnode2 = Circuit.ground; farads = gate_cap;
            ckind = Circuit.Gate }
          :: !capacitors;
      if fixed_cap > 0.0 then
        capacitors :=
          { Circuit.cnode1 = here; cnode2 = Circuit.ground; farads = fixed_cap;
            ckind = Circuit.Fixed }
          :: !capacitors
    done
  done;
  (* Functional blocks: clusters of current sources on the bottom layer. *)
  let bs = Int.min spec.block_size (Int.min spec.rows spec.cols) in
  let per_node_peak = spec.block_peak /. float_of_int (bs * bs) in
  for _ = 1 to spec.block_count do
    let r0 = Prob.Rng.int rng (Int.max 1 (spec.rows - bs + 1)) in
    let c0 = Prob.Rng.int rng (Int.max 1 (spec.cols - bs + 1)) in
    for dr = 0 to bs - 1 do
      for dc = 0 to bs - 1 do
        let node = node_at spec ~layer:0 ~row:(r0 + dr) ~col:(c0 + dc) in
        let wave =
          Waveform.random_activity rng ~peak:per_node_peak ~period:spec.clock_period
            ~duty:spec.duty ~cycles:spec.sim_cycles
        in
        isources :=
          { Circuit.inode = node; wave; region = region_of_node spec node } :: !isources
      done
    done
  done;
  Circuit.make ~num_nodes:(Grid_spec.node_count spec) ~resistors:!resistors
    ~capacitors:!capacitors ~isources:!isources ~vsources:!vsources ()
