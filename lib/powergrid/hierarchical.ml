type block = {
  nodes : int array;  (** global ids of internal nodes *)
  factor : Linalg.Sparse_cholesky.t;  (** of the internal matrix A_ii *)
  a_ib : Linalg.Sparse.t;  (** internal(local) x ports coupling *)
}

type t = {
  n : int;
  port_of : int array;  (** global node -> port id, -1 for internal *)
  blocks : block array;
  schur : Linalg.Cholesky.t;
  nports : int;
}

let partition_by_stripes ~n ~blocks =
  if blocks < 1 || blocks > n then invalid_arg "Hierarchical.partition_by_stripes: bad block count";
  Array.init n (fun i -> i * blocks / n)

let build a ~part =
  let n, m = Linalg.Sparse.dims a in
  if n <> m then invalid_arg "Hierarchical.build: matrix is not square";
  if Array.length part <> n then invalid_arg "Hierarchical.build: partition length mismatch";
  let nblocks = 1 + Array.fold_left Int.max 0 part in
  let { Linalg.Sparse.colptr; rowind; values; _ } = a in
  (* Ports: nodes coupled to another block. *)
  let is_port = Array.make n false in
  for j = 0 to n - 1 do
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      let i = rowind.(k) in
      if part.(i) <> part.(j) then begin
        is_port.(i) <- true;
        is_port.(j) <- true
      end
    done
  done;
  let port_of = Array.make n (-1) in
  let nports = ref 0 in
  for i = 0 to n - 1 do
    if is_port.(i) then begin
      port_of.(i) <- !nports;
      incr nports
    end
  done;
  let nports = !nports in
  if nports = 0 then invalid_arg "Hierarchical.build: single block (no ports); use a flat solver";
  (* Internal node lists per block, and their local indices. *)
  let local_of = Array.make n (-1) in
  let block_of = Array.make n (-1) in
  let members = Array.make nblocks [] in
  for i = n - 1 downto 0 do
    if not is_port.(i) then members.(part.(i)) <- i :: members.(part.(i))
  done;
  let member_arrays = Array.map Array.of_list members in
  Array.iteri
    (fun bid nodes ->
      Array.iteri
        (fun local g ->
          local_of.(g) <- local;
          block_of.(g) <- bid)
        nodes)
    member_arrays;
  (* Dense Schur complement starts as A_pp. *)
  let schur_dense = Linalg.Dense.create nports nports in
  for j = 0 to n - 1 do
    if is_port.(j) then
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        let i = rowind.(k) in
        if is_port.(i) then Linalg.Dense.add_entry schur_dense port_of.(i) port_of.(j) values.(k)
      done
  done;
  (* Per-block macromodels. *)
  let blocks =
    member_arrays
    |> Array.to_list
    |> List.filter (fun nodes -> Array.length nodes > 0)
    |> List.map (fun nodes ->
           let bid = block_of.(nodes.(0)) in
           let nb = Array.length nodes in
           let bii = Linalg.Sparse_builder.create ~nrows:nb ~ncols:nb () in
           let bib = Linalg.Sparse_builder.create ~nrows:nb ~ncols:nports () in
           Array.iteri
             (fun jl g ->
               for k = colptr.(g) to colptr.(g + 1) - 1 do
                 let i = rowind.(k) in
                 if is_port.(i) then Linalg.Sparse_builder.add bib jl port_of.(i) values.(k)
                 else begin
                   (* both internal; connectivity implies same block *)
                   assert (block_of.(i) = bid);
                   Linalg.Sparse_builder.add bii local_of.(i) jl values.(k)
                 end
               done)
             nodes;
           let a_ii = Linalg.Sparse_builder.to_csc bii in
           let a_ib = Linalg.Sparse_builder.to_csc bib in
           let factor = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Min_degree a_ii in
           (* Schur update: S -= A_bi A_ii^-1 A_ib, column by nonzero column. *)
           let { Linalg.Sparse.colptr = bp; rowind = bi; values = bv; _ } = a_ib in
           for c = 0 to nports - 1 do
             if bp.(c + 1) > bp.(c) then begin
               let w = Array.make nb 0.0 in
               for k = bp.(c) to bp.(c + 1) - 1 do
                 w.(bi.(k)) <- bv.(k)
               done;
               Linalg.Sparse_cholesky.solve_in_place factor w;
               (* row r of the update: (A_ib[:, r]) . w *)
               for r = 0 to nports - 1 do
                 if bp.(r + 1) > bp.(r) then begin
                   let acc = ref 0.0 in
                   for k = bp.(r) to bp.(r + 1) - 1 do
                     acc := !acc +. (bv.(k) *. w.(bi.(k)))
                   done;
                   if Util.Floats.nonzero !acc then Linalg.Dense.add_entry schur_dense r c (-. !acc)
                 end
               done
             end
           done;
           { nodes; factor; a_ib })
    |> Array.of_list
  in
  let schur = Linalg.Cholesky.factor schur_dense in
  (* local_of / block_of are build-time scratch only: solves never map
     back from global ids, so the record does not retain them. *)
  { n; port_of; blocks; schur; nports }

let ports t = t.nports

let internal_blocks t = Array.length t.blocks

let solve t b =
  if Array.length b <> t.n then invalid_arg "Hierarchical.solve: dimension mismatch";
  (* Gather per-block internal RHS and the port RHS. *)
  let b_p = Array.make t.nports 0.0 in
  for i = 0 to t.n - 1 do
    if t.port_of.(i) >= 0 then b_p.(t.port_of.(i)) <- b.(i)
  done;
  let ys =
    Array.map
      (fun blk ->
        let bi = Array.map (fun g -> b.(g)) blk.nodes in
        Linalg.Sparse_cholesky.solve_in_place blk.factor bi;
        (* rhs_p -= A_ib^T y *)
        let contrib = Linalg.Sparse.mul_vec_t blk.a_ib bi in
        for p = 0 to t.nports - 1 do
          b_p.(p) <- b_p.(p) -. contrib.(p)
        done;
        bi)
      t.blocks
  in
  ignore ys;
  let x_p = Linalg.Cholesky.solve t.schur b_p in
  let x = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    if t.port_of.(i) >= 0 then x.(i) <- x_p.(t.port_of.(i))
  done;
  Array.iter
    (fun blk ->
      let rhs = Array.map (fun g -> b.(g)) blk.nodes in
      let coupling = Linalg.Sparse.mul_vec blk.a_ib x_p in
      for k = 0 to Array.length rhs - 1 do
        rhs.(k) <- rhs.(k) -. coupling.(k)
      done;
      Linalg.Sparse_cholesky.solve_in_place blk.factor rhs;
      Array.iteri (fun k g -> x.(g) <- rhs.(k)) blk.nodes)
    t.blocks;
  x
