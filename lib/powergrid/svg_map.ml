let cell = 14

let margin = 48

(* Blue (low) -> white -> red (high). *)
let color t =
  let t = Float.max 0.0 (Float.min 1.0 t) in
  let r, g, b =
    if t < 0.5 then begin
      let s = t /. 0.5 in
      (int_of_float (59.0 +. (s *. 196.0)), int_of_float (76.0 +. (s *. 179.0)),
       int_of_float (192.0 +. (s *. 63.0)))
    end
    else begin
      let s = (t -. 0.5) /. 0.5 in
      (255, int_of_float (255.0 -. (s *. 179.0)), int_of_float (255.0 -. (s *. 205.0)))
    end
  in
  Printf.sprintf "#%02x%02x%02x" r g b

let render (spec : Grid_spec.t) ~values ?(title = "") ?(unit_label = "") () =
  let rows = spec.rows and cols = spec.cols in
  let lo = ref infinity and hi = ref neg_infinity in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = values.(Grid_gen.node_at spec ~layer:0 ~row:r ~col:c) in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done
  done;
  let span = if !hi -. !lo <= 0.0 then 1.0 else !hi -. !lo in
  let width = (cols * cell) + (2 * margin) in
  let height = (rows * cell) + (2 * margin) + 20 in
  let buf = Buffer.create (rows * cols * 64) in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height);
  if title <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"24\" font-family=\"sans-serif\" font-size=\"14\">%s</text>\n"
         margin title);
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = values.(Grid_gen.node_at spec ~layer:0 ~row:r ~col:c) in
      let t = (v -. !lo) /. span in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"><title>node (%d,%d): %.4g</title></rect>\n"
           (margin + (c * cell))
           (margin + (r * cell))
           cell cell (color t) r c v)
    done
  done;
  (* Legend: a horizontal ramp under the map. *)
  let legend_y = margin + (rows * cell) + 12 in
  let legend_w = cols * cell in
  let segments = 40 in
  for s = 0 to segments - 1 do
    Buffer.add_string buf
      (Printf.sprintf "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"10\" fill=\"%s\"/>\n"
         (margin + (s * legend_w / segments))
         legend_y
         ((legend_w / segments) + 1)
         (color (float_of_int s /. float_of_int (segments - 1))))
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" font-size=\"11\">%.4g %s</text>\n"
       margin (legend_y + 22) !lo unit_label);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" font-size=\"11\" text-anchor=\"end\">%.4g %s</text>\n"
       (margin + legend_w) (legend_y + 22) !hi unit_label);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save path spec ~values ?title ?unit_label () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (render spec ~values ?title ?unit_label ());
      close_out oc)
