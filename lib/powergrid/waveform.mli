(** Transient current-source profiles.

    The paper obtains block current profiles by simulating the functional
    blocks "for a large sequence of random input vectors"; {!random_activity}
    synthesizes the same kind of clock-correlated, randomly gated profile. *)

type pulse = {
  base : float;
  peak : float;
  delay : float;
  rise : float;
  width : float;
  fall : float;
  period : float;  (** 0 or negative means non-repeating *)
}

type t =
  | Dc of float
  | Pulse of pulse
  | Pwl of (float * float) array  (** piecewise-linear (time, value), times ascending *)

val eval : t -> float -> float
(** Value at a time (>= 0). PWL holds its end values outside its range. *)

val peak : t -> float
(** Maximum value taken over time (for sizing checks). *)

val scale : float -> t -> t
(** Scale the value axis. *)

val random_activity :
  Prob.Rng.t ->
  peak:float ->
  period:float ->
  duty:float ->
  cycles:int ->
  t
(** Clock-gated activity: each clock cycle fires with probability [duty]
    a triangular current pulse of random height in [0.3, 1.0] * [peak]
    occupying the first half of the cycle. Returns a [Pwl]. *)
