type node = int

let ground = -1

type resistor_kind = Metal | Via | Package

type capacitor_kind = Gate | Fixed

type resistor = { rnode1 : node; rnode2 : node; ohms : float; rkind : resistor_kind }

type capacitor = { cnode1 : node; cnode2 : node; farads : float; ckind : capacitor_kind }

type current_source = { inode : node; wave : Waveform.t; region : int }

type vsource = { vnode : node; volts : float; series_ohms : float }

type inductor = { lnode1 : node; lnode2 : node; henries : float }

type t = {
  num_nodes : int;
  resistors : resistor array;
  capacitors : capacitor array;
  isources : current_source array;
  vsources : vsource array;
  inductors : inductor array;
}

let check_node num_nodes what n =
  if n <> ground && (n < 0 || n >= num_nodes) then
    invalid_arg (Printf.sprintf "Circuit.make: %s node %d out of range [0, %d)" what n num_nodes)

let make ?(inductors = []) ~num_nodes ~resistors ~capacitors ~isources ~vsources () =
  if num_nodes <= 0 then invalid_arg "Circuit.make: num_nodes must be positive";
  List.iter
    (fun l ->
      check_node num_nodes "inductor" l.lnode1;
      check_node num_nodes "inductor" l.lnode2;
      if l.henries <= 0.0 then invalid_arg "Circuit.make: inductance must be positive";
      if l.lnode1 = l.lnode2 then invalid_arg "Circuit.make: inductor shorts a node to itself")
    inductors;
  List.iter
    (fun r ->
      check_node num_nodes "resistor" r.rnode1;
      check_node num_nodes "resistor" r.rnode2;
      if r.ohms <= 0.0 then invalid_arg "Circuit.make: resistance must be positive";
      if r.rnode1 = r.rnode2 then invalid_arg "Circuit.make: resistor shorts a node to itself")
    resistors;
  List.iter
    (fun c ->
      check_node num_nodes "capacitor" c.cnode1;
      check_node num_nodes "capacitor" c.cnode2;
      if c.farads <= 0.0 then invalid_arg "Circuit.make: capacitance must be positive")
    capacitors;
  List.iter
    (fun i ->
      check_node num_nodes "current source" i.inode;
      if i.inode = ground then invalid_arg "Circuit.make: current source must attach to a node")
    isources;
  if vsources = [] then invalid_arg "Circuit.make: the grid needs at least one supply pad";
  List.iter
    (fun v ->
      check_node num_nodes "voltage source" v.vnode;
      if v.vnode = ground then invalid_arg "Circuit.make: supply pad must attach to a node";
      if v.series_ohms < 0.0 then invalid_arg "Circuit.make: negative pad resistance")
    vsources;
  {
    num_nodes;
    resistors = Array.of_list resistors;
    capacitors = Array.of_list capacitors;
    isources = Array.of_list isources;
    vsources = Array.of_list vsources;
    inductors = Array.of_list inductors;
  }

let node_count c = c.num_nodes

let stats c =
  let base =
    Printf.sprintf "%d nodes, %d resistors, %d capacitors, %d current sources, %d pads"
      c.num_nodes (Array.length c.resistors) (Array.length c.capacitors)
      (Array.length c.isources) (Array.length c.vsources)
  in
  if Array.length c.inductors = 0 then base
  else Printf.sprintf "%s, %d inductors" base (Array.length c.inductors)

let with_extra_capacitors c extra =
  make
    ~inductors:(Array.to_list c.inductors)
    ~num_nodes:c.num_nodes
    ~resistors:(Array.to_list c.resistors)
    ~capacitors:(Array.to_list c.capacitors @ extra)
    ~isources:(Array.to_list c.isources)
    ~vsources:(Array.to_list c.vsources)
    ()
