(** RC power-grid circuits.

    Nodes are integers [0 .. num_nodes - 1]; the ground/reference node is
    {!ground} and carries no unknown.  Elements are tagged with their
    physical origin so the variation model knows which parameters they
    follow (metal conductance varies with width/thickness, gate capacitance
    with channel length, package parasitics not at all). *)

type node = int

val ground : node
(** The reference node (-1). *)

type resistor_kind =
  | Metal  (** on-chip wire: conductance varies with W, T *)
  | Via  (** inter-layer via: also W/T-dependent *)
  | Package  (** package/bump parasitic: variation-free *)

type capacitor_kind =
  | Gate  (** gate capacitance of the driven logic: varies with Leff *)
  | Fixed  (** diffusion/wire capacitance: held nominal (as in the paper) *)

type resistor = { rnode1 : node; rnode2 : node; ohms : float; rkind : resistor_kind }

type capacitor = { cnode1 : node; cnode2 : node; farads : float; ckind : capacitor_kind }

type current_source = {
  inode : node;  (** drain node; current flows from [inode] to ground *)
  wave : Waveform.t;
  region : int;  (** chip region for intra-die modeling (Sec. 5.1) *)
}

type vsource = { vnode : node; volts : float; series_ohms : float }
(** A supply pad: ideal source in series with [series_ohms] (may be 0). *)

type inductor = { lnode1 : node; lnode2 : node; henries : float }
(** Package/loop inductance (the [L di/dt] term of the paper's intro).
    Inductors force the full-MNA formulation ({!Mna.Full}); the Norton
    nodal path rejects circuits containing them. *)

type t = private {
  num_nodes : int;
  resistors : resistor array;
  capacitors : capacitor array;
  isources : current_source array;
  vsources : vsource array;
  inductors : inductor array;
}

val make :
  ?inductors:inductor list ->
  num_nodes:int ->
  resistors:resistor list ->
  capacitors:capacitor list ->
  isources:current_source list ->
  vsources:vsource list ->
  unit ->
  t
(** Validates node ranges, positive resistances/capacitances/inductances,
    and that at least one supply pad exists. *)

val node_count : t -> int

val stats : t -> string
(** One-line summary for logs. *)

val with_extra_capacitors : t -> capacitor list -> t
(** A copy of the circuit with additional capacitors (decap insertion /
    what-if edits). Validates the new elements like {!make}. *)
