(** Krylov-subspace model order reduction (PRIMA-style block Arnoldi).

    The paper's Sec. 5.2 points to MOR as a complexity reducer: designers
    only observe a handful of nodes, so the grid can be projected onto a
    small moment-matching subspace once and simulated there.  This module
    implements congruence-transform reduction about s = 0:

    - Krylov space: colspan [ G^-1 B, (G^-1 C) G^-1 B, ... ]
    - [x ~ V z] with [V^T V = I];  [Gr = V^T G V], [Cr = V^T C V]

    Congruence preserves passivity for SPD G, C (PRIMA's key property),
    and the first [blocks] moments of the input-to-state map match. *)

type t = {
  v : Linalg.Dense.t;  (** n x k orthonormal projection basis *)
  gr : Linalg.Dense.t;  (** k x k reduced conductance *)
  cr : Linalg.Dense.t;  (** k x k reduced capacitance *)
}

val reduce :
  g:Linalg.Sparse.t -> c:Linalg.Sparse.t -> inputs:Linalg.Vec.t array -> blocks:int -> t
(** [reduce ~g ~c ~inputs ~blocks] builds the order-[blocks] block-Krylov
    basis seeded by the given input vectors (e.g. the pad injection and a
    per-block drain indicator).  The reduced dimension is at most
    [blocks * Array.length inputs] (deflation may shrink it).
    Raises if [g] is not SPD. *)

val dim : t -> int
(** Reduced dimension k. *)

val project_input : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [V^T u]: full excitation to reduced excitation. *)

val lift : t -> Linalg.Vec.t -> node:int -> float
(** Value of the reconstructed full state [V z] at one node. *)

val transient :
  t ->
  h:float ->
  steps:int ->
  inject:(float -> Linalg.Vec.t -> unit) ->
  n:int ->
  on_step:(int -> float -> Linalg.Vec.t -> unit) ->
  unit
(** Backward-Euler transient of the reduced system.  [inject] fills the
    *full-size* excitation (dimension [n]); it is projected each step.
    [on_step] receives the reduced state; use {!lift} to read nodes.
    Starts from the reduced DC solution. *)
