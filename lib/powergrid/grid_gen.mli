(** Synthetic multi-layer mesh power-grid generator. *)

val node_at : Grid_spec.t -> layer:int -> row:int -> col:int -> Circuit.node
(** Global node id of a mesh position. Raises on out-of-range coordinates. *)

val region_of_node : Grid_spec.t -> Circuit.node -> int
(** Chip region (for the Sec. 5.1 intra-die leakage model) of a node;
    upper-layer nodes inherit the region below them. *)

val generate : Grid_spec.t -> Circuit.t
(** Build the circuit: bottom-layer mesh with load caps and block current
    sources, coarser upper meshes, via stitching, supply pads with package
    series resistance on the top layer. Deterministic given [spec.seed]. *)

val center_node : Grid_spec.t -> Circuit.node
(** Bottom-layer center — a convenient probe node far from the pads. *)

val stream_mna : ?metrics:Util.Metrics.t -> Grid_spec.t -> Mna.t
(** Assemble the MNA system of [generate spec] without materializing the
    circuit: conductances and capacitances stamp straight into CSC via
    {!Linalg.Sparse.of_stamps} (peak memory one triplet slot per stamp,
    counted into [metrics]), and only the RNG-dependent block current
    sources are built as values.  Matrices match
    [Mna.assemble (generate spec)] up to duplicate-summation rounding;
    waveforms, regions and the pad injection are bitwise identical.
    Raises [Invalid_argument] on a zero pad series resistance. *)
