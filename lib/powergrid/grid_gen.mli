(** Synthetic multi-layer mesh power-grid generator. *)

val node_at : Grid_spec.t -> layer:int -> row:int -> col:int -> Circuit.node
(** Global node id of a mesh position. Raises on out-of-range coordinates. *)

val region_of_node : Grid_spec.t -> Circuit.node -> int
(** Chip region (for the Sec. 5.1 intra-die leakage model) of a node;
    upper-layer nodes inherit the region below them. *)

val generate : Grid_spec.t -> Circuit.t
(** Build the circuit: bottom-layer mesh with load caps and block current
    sources, coarser upper meshes, via stitching, supply pads with package
    series resistance on the top layer. Deterministic given [spec.seed]. *)

val center_node : Grid_spec.t -> Circuit.node
(** Bottom-layer center — a convenient probe node far from the pads. *)
