type scheme = Backward_euler | Trapezoidal

type config = { h : float; steps : int; scheme : scheme; ordering : Linalg.Ordering.kind }

let default_config ~h ~steps =
  { h; steps; scheme = Backward_euler; ordering = Linalg.Ordering.Nested_dissection }

let run cfg ~g ~c ~inject ~x0 ~on_step =
  if cfg.h <= 0.0 then invalid_arg "Transient.run: step must be positive";
  if cfg.steps < 0 then invalid_arg "Transient.run: negative step count";
  let n, _ = Linalg.Sparse.dims g in
  if Array.length x0 <> n then invalid_arg "Transient.run: x0 dimension mismatch";
  let x = Array.copy x0 in
  let u = Linalg.Vec.create n in
  let rhs = Linalg.Vec.create n in
  let metrics = Util.Metrics.global in
  (match cfg.scheme with
  | Backward_euler ->
      (* (G + C/h) x_{k+1} = u(t_{k+1}) + (C/h) x_k *)
      let m = Linalg.Sparse.axpy ~alpha:(1.0 /. cfg.h) c g in
      let f =
        Util.Metrics.span metrics "transient.factor_s" (fun () ->
            Linalg.Sparse_cholesky.factor ~ordering:cfg.ordering m)
      in
      for k = 1 to cfg.steps do
        let t = float_of_int k *. cfg.h in
        let span = Util.Metrics.start_span () in
        inject t u;
        Array.blit u 0 rhs 0 n;
        Linalg.Sparse.mul_vec_acc ~alpha:(1.0 /. cfg.h) c x rhs;
        Linalg.Sparse_cholesky.solve_in_place f rhs;
        Array.blit rhs 0 x 0 n;
        ignore (Util.Metrics.stop_span metrics "transient.step_s" span);
        on_step k t x
      done
  | Trapezoidal ->
      (* (C/h + G/2) x_{k+1} = (C/h - G/2) x_k + (u_k + u_{k+1}) / 2 *)
      let m = Linalg.Sparse.axpy ~alpha:(2.0 /. cfg.h) c g in
      (* factor G + 2C/h, i.e. 2 * (C/h + G/2); scale RHS accordingly *)
      let f =
        Util.Metrics.span metrics "transient.factor_s" (fun () ->
            Linalg.Sparse_cholesky.factor ~ordering:cfg.ordering m)
      in
      let u_prev = Linalg.Vec.create n in
      inject 0.0 u_prev;
      for k = 1 to cfg.steps do
        let t = float_of_int k *. cfg.h in
        let span = Util.Metrics.start_span () in
        inject t u;
        for i = 0 to n - 1 do
          rhs.(i) <- u.(i) +. u_prev.(i)
        done;
        Linalg.Sparse.mul_vec_acc ~alpha:(2.0 /. cfg.h) c x rhs;
        Linalg.Sparse.mul_vec_acc ~alpha:(-1.0) g x rhs;
        Linalg.Sparse_cholesky.solve_in_place f rhs;
        Array.blit rhs 0 x 0 n;
        Array.blit u 0 u_prev 0 n;
        ignore (Util.Metrics.stop_span metrics "transient.step_s" span);
        on_step k t x
      done);
  ignore x

let run_full cfg (sys : Mna.Full.system) ~on_step =
  if cfg.h <= 0.0 then invalid_arg "Transient.run_full: step must be positive";
  let dim = sys.Mna.Full.dim in
  (* DC start: inductors are shorts, capacitors open — solve A x = u(0). *)
  let metrics = Util.Metrics.global in
  let fdc =
    Util.Metrics.span metrics "transient.factor_s" (fun () ->
        Linalg.Sparse_lu.factor ~ordering:cfg.ordering sys.Mna.Full.a)
  in
  let x = Linalg.Sparse_lu.solve fdc (sys.Mna.Full.rhs 0.0) in
  let m = Linalg.Sparse.axpy ~alpha:(1.0 /. cfg.h) sys.Mna.Full.c sys.Mna.Full.a in
  let f =
    Util.Metrics.span metrics "transient.factor_s" (fun () ->
        Linalg.Sparse_lu.factor ~ordering:cfg.ordering m)
  in
  let cx = Linalg.Vec.create dim in
  (* Node-view buffer reused across steps: on_step receives the node
     voltages (MNA state minus branch currents) without a per-step
     Array.sub allocation.  Callers must copy if they retain it. *)
  let node_view = Linalg.Vec.create sys.Mna.Full.nodes in
  for k = 1 to cfg.steps do
    let t = float_of_int k *. cfg.h in
    let span = Util.Metrics.start_span () in
    let u = sys.Mna.Full.rhs t in
    Linalg.Sparse.mul_vec_into sys.Mna.Full.c x cx;
    for i = 0 to dim - 1 do
      x.(i) <- u.(i) +. (cx.(i) /. cfg.h)
    done;
    Linalg.Sparse_lu.solve_in_place f x;
    ignore (Util.Metrics.stop_span metrics "transient.step_s" span);
    Array.blit x 0 node_view 0 sys.Mna.Full.nodes;
    on_step k t node_view
  done

let run_circuit cfg (a : Mna.t) ~on_step =
  let g = Mna.g_total a and c = Mna.c_total a in
  let x0 =
    let f = Linalg.Sparse_cholesky.factor ~ordering:cfg.ordering g in
    Linalg.Sparse_cholesky.solve f (Mna.inject a 0.0)
  in
  run cfg ~g ~c ~inject:(fun t u -> Mna.inject_into a t u) ~x0 ~on_step
