(** Random-walk DC solver (Qian, Nassif, Sapatnekar, DAC 2003 — the
    paper's reference [6]).

    The nodal equation [v_i = sum_j (g_ij / d_i) v_j + u_i / d_i] reads as
    a killed random walk: step to a neighbor with probability proportional
    to its conductance, get absorbed at a supply pad with probability
    [g_pad / d] (collecting the pad voltage), and pay the local drain
    current "motel cost" at every visit.  One node's voltage can then be
    estimated *without solving the whole grid* — the incremental/localized
    analysis the paper cites. *)

type t
(** Preprocessed walk graph for a grid at a fixed time point. *)

val prepare : Mna.t -> time:float -> t
(** Build transition tables from an assembled grid; drain currents are
    frozen at [time]. Raises [Invalid_argument] if some node has no path
    to a pad (walk would not terminate). *)

val estimate : t -> Prob.Rng.t -> node:int -> walks:int -> float * float
(** [estimate t rng ~node ~walks] runs [walks] independent walks from
    [node]; returns the voltage estimate and its standard error. *)

val max_steps_guard : int
(** Per-walk step budget after which a walk is abandoned (defensive bound;
    practically unreachable on connected grids). *)
