(** IR-drop metrics over node voltages. *)

val drops : vdd:float -> Linalg.Vec.t -> Linalg.Vec.t
(** [vdd - v] per node. *)

val max_drop : vdd:float -> Linalg.Vec.t -> float * int
(** Largest drop and the node where it occurs. *)

val drop_percent : vdd:float -> float -> float
(** A drop expressed as % of VDD. *)

val worst_nodes : vdd:float -> Linalg.Vec.t -> int -> (int * float) list
(** The [k] nodes with the largest drops, sorted worst first. *)
