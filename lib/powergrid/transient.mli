(** Fixed-step transient analysis of [G x + C x' = u(t)].

    The paper uses a fixed time step; backward Euler needs one
    factorization of [G + C/h] reused across all steps, the property both
    OPERA and the Monte-Carlo baseline build on. *)

type scheme =
  | Backward_euler
  | Trapezoidal

type config = {
  h : float;  (** time step *)
  steps : int;  (** number of steps after t = 0 *)
  scheme : scheme;
  ordering : Linalg.Ordering.kind;
}

val default_config : h:float -> steps:int -> config
(** Backward Euler with nested-dissection ordering. *)

val run :
  config ->
  g:Linalg.Sparse.t ->
  c:Linalg.Sparse.t ->
  inject:(float -> Linalg.Vec.t -> unit) ->
  x0:Linalg.Vec.t ->
  on_step:(int -> float -> Linalg.Vec.t -> unit) ->
  unit
(** Integrates from [x0] (the state at t = 0).  [inject t u] must overwrite
    [u] with the excitation at time [t].  [on_step k t x] is called for
    k = 1..steps with the state at [t = k h]; the vector is reused between
    steps — copy it if you keep it. *)

val run_circuit :
  config -> Mna.t -> on_step:(int -> float -> Linalg.Vec.t -> unit) -> unit
(** Convenience wrapper: nominal transient of an assembled grid, starting
    from the DC solution at t = 0. *)

val run_full :
  config -> Mna.Full.system -> on_step:(int -> float -> Linalg.Vec.t -> unit) -> unit
(** Backward-Euler transient of a full-MNA system (ideal pads and/or
    inductors; indefinite matrix, solved with sparse LU).  [on_step]
    receives node voltages only (branch currents are internal) in a
    buffer that is OVERWRITTEN on the next step -- copy it if you retain
    it past the callback.  Trapezoidal is not offered on this path. *)
