type t = { v : Linalg.Dense.t; gr : Linalg.Dense.t; cr : Linalg.Dense.t }

(* Modified Gram-Schmidt of [w] against the accepted columns; returns None
   if [w] is (numerically) inside their span. *)
let orthonormalize columns w =
  let w = Array.copy w in
  let initial = Linalg.Vec.norm2 w in
  if Util.Floats.is_zero initial then None
  else begin
    List.iter
      (fun q ->
        let proj = Linalg.Vec.dot q w in
        Linalg.Vec.axpy ~alpha:(-.proj) q w)
      columns;
    (* re-orthogonalize once for stability *)
    List.iter
      (fun q ->
        let proj = Linalg.Vec.dot q w in
        Linalg.Vec.axpy ~alpha:(-.proj) q w)
      columns;
    let nrm = Linalg.Vec.norm2 w in
    if nrm < 1e-10 *. initial || Util.Floats.is_zero nrm then None
    else begin
      Linalg.Vec.scale (1.0 /. nrm) w;
      Some w
    end
  end

let reduce ~g ~c ~inputs ~blocks =
  let n, m = Linalg.Sparse.dims g in
  if n <> m then invalid_arg "Mor.reduce: matrix is not square";
  if blocks < 1 then invalid_arg "Mor.reduce: need at least one moment block";
  if Array.length inputs = 0 then invalid_arg "Mor.reduce: need at least one input";
  Array.iter
    (fun b -> if Array.length b <> n then invalid_arg "Mor.reduce: input dimension mismatch")
    inputs;
  let f = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection g in
  (* Block Krylov: W_0 = G^-1 B; W_{j+1} = G^-1 C W_j, orthonormalized. *)
  let basis = ref [] in
  let current = ref (Array.map (fun b -> Linalg.Sparse_cholesky.solve f b) inputs) in
  for _ = 1 to blocks do
    Array.iter
      (fun w ->
        match orthonormalize (List.rev !basis) w with
        | Some q -> basis := q :: !basis
        | None -> ())
      !current;
    current :=
      Array.map
        (fun w -> Linalg.Sparse_cholesky.solve f (Linalg.Sparse.mul_vec c w))
        !current
  done;
  let columns = Array.of_list (List.rev !basis) in
  let k = Array.length columns in
  if k = 0 then invalid_arg "Mor.reduce: empty Krylov basis (zero inputs?)";
  let v = Linalg.Dense.init n k (fun i j -> columns.(j).(i)) in
  let project_matrix a =
    (* V^T A V computed column by column through the sparse matrix *)
    Linalg.Dense.init k k (fun i j ->
        let avj = Linalg.Sparse.mul_vec a columns.(j) in
        Linalg.Vec.dot columns.(i) avj)
  in
  { v; gr = project_matrix g; cr = project_matrix c }

let dim t = snd (Linalg.Dense.dims t.v)

let project_input t u = Linalg.Dense.matvec_t t.v u

let lift t z ~node =
  let _, k = Linalg.Dense.dims t.v in
  let acc = ref 0.0 in
  for j = 0 to k - 1 do
    acc := !acc +. (Linalg.Dense.get t.v node j *. z.(j))
  done;
  !acc

let transient t ~h ~steps ~inject ~n ~on_step =
  if h <= 0.0 then invalid_arg "Mor.transient: step must be positive";
  let k = dim t in
  let u_full = Array.make n 0.0 in
  let m = Linalg.Dense.add t.gr (Linalg.Dense.scale (1.0 /. h) t.cr) in
  let fm = Linalg.Lu.factor m in
  let fg = Linalg.Lu.factor t.gr in
  inject 0.0 u_full;
  let z = ref (Linalg.Lu.solve fg (project_input t u_full)) in
  for step = 1 to steps do
    let time = float_of_int step *. h in
    inject time u_full;
    let rhs = project_input t u_full in
    let cz = Linalg.Dense.matvec t.cr !z in
    for i = 0 to k - 1 do
      rhs.(i) <- rhs.(i) +. (cz.(i) /. h)
    done;
    z := Linalg.Lu.solve fm rhs;
    on_step step time !z
  done
