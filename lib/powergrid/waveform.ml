type pulse = {
  base : float;
  peak : float;
  delay : float;
  rise : float;
  width : float;
  fall : float;
  period : float;
}

type t = Dc of float | Pulse of pulse | Pwl of (float * float) array

let eval_pulse p t =
  if t < p.delay then p.base
  else begin
    let t' = if p.period > 0.0 then Float.rem (t -. p.delay) p.period else t -. p.delay in
    if t' < p.rise then p.base +. ((p.peak -. p.base) *. t' /. p.rise)
    else if t' < p.rise +. p.width then p.peak
    else if t' < p.rise +. p.width +. p.fall then
      p.peak -. ((p.peak -. p.base) *. (t' -. p.rise -. p.width) /. p.fall)
    else p.base
  end

let eval_pwl points t =
  let n = Array.length points in
  if n = 0 then 0.0
  else if t <= fst points.(0) then snd points.(0)
  else if t >= fst points.(n - 1) then snd points.(n - 1)
  else begin
    (* binary search for the segment containing t *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst points.(mid) <= t then lo := mid else hi := mid
    done;
    let t0, v0 = points.(!lo) and t1, v1 = points.(!hi) in
    (* exact compare is the point: guard the zero-width segment that
       would otherwise divide by zero *)
    if (t1 = t0) [@opera.exact] then v1
    else v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
  end

let eval w t =
  match w with Dc v -> v | Pulse p -> eval_pulse p t | Pwl points -> eval_pwl points t

let peak = function
  | Dc v -> v
  | Pulse p -> Float.max p.base p.peak
  | Pwl points -> Array.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity points

let scale alpha = function
  | Dc v -> Dc (alpha *. v)
  | Pulse p -> Pulse { p with base = alpha *. p.base; peak = alpha *. p.peak }
  | Pwl points -> Pwl (Array.map (fun (t, v) -> (t, alpha *. v)) points)

let random_activity rng ~peak ~period ~duty ~cycles =
  if cycles <= 0 then invalid_arg "Waveform.random_activity: cycles must be positive";
  if duty < 0.0 || duty > 1.0 then invalid_arg "Waveform.random_activity: duty must be in [0,1]";
  let points = ref [ (0.0, 0.0) ] in
  for c = 0 to cycles - 1 do
    let t0 = float_of_int c *. period in
    if Prob.Rng.float rng < duty then begin
      let height = peak *. Prob.Rng.float_range rng 0.3 1.0 in
      (* triangular pulse over the first half of the cycle *)
      points :=
        (t0 +. (period /. 2.0), 0.0)
        :: (t0 +. (period /. 4.0), height)
        :: (t0 +. 1e-3 *. period, 0.0)
        :: !points
    end
  done;
  points := (float_of_int cycles *. period, 0.0) :: !points;
  let arr = Array.of_list (List.rev !points) in
  Array.sort (fun (t1, _) (t2, _) -> compare t1 t2) arr;
  Pwl arr
