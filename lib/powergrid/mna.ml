type t = {
  n : int;
  g_wire : Linalg.Sparse.t;
  g_pad : Linalg.Sparse.t;
  c_gate : Linalg.Sparse.t;
  c_fixed : Linalg.Sparse.t;
  u_pad : Linalg.Vec.t;
  isources : Circuit.current_source array;
}

let opt_node n = if n = Circuit.ground then None else Some n

let assemble (circuit : Circuit.t) =
  if Array.length circuit.inductors > 0 then
    invalid_arg "Mna.assemble: circuit has inductors; use Mna.Full.assemble";
  let n = circuit.num_nodes in
  let wire = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  let pad = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  let gate = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  let fixed = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  Array.iter
    (fun (r : Circuit.resistor) ->
      let g = 1.0 /. r.ohms in
      let target = match r.rkind with Circuit.Metal | Circuit.Via -> wire | Circuit.Package -> pad in
      Linalg.Sparse_builder.stamp_conductance target (opt_node r.rnode1) (opt_node r.rnode2) g)
    circuit.resistors;
  Array.iter
    (fun (c : Circuit.capacitor) ->
      let target = match c.ckind with Circuit.Gate -> gate | Circuit.Fixed -> fixed in
      Linalg.Sparse_builder.stamp_conductance target (opt_node c.cnode1) (opt_node c.cnode2)
        c.farads)
    circuit.capacitors;
  let u_pad = Linalg.Vec.create n in
  Array.iter
    (fun (v : Circuit.vsource) ->
      if v.series_ohms <= 0.0 then
        invalid_arg "Mna.assemble: ideal pad (zero series resistance); use Mna.Full.assemble";
      let g = 1.0 /. v.series_ohms in
      Linalg.Sparse_builder.add pad v.vnode v.vnode g;
      u_pad.(v.vnode) <- u_pad.(v.vnode) +. (g *. v.volts))
    circuit.vsources;
  {
    n;
    g_wire = Linalg.Sparse_builder.to_csc wire;
    g_pad = Linalg.Sparse_builder.to_csc pad;
    c_gate = Linalg.Sparse_builder.to_csc gate;
    c_fixed = Linalg.Sparse_builder.to_csc fixed;
    u_pad;
    isources = circuit.isources;
  }

let g_total a = Linalg.Sparse.add a.g_wire a.g_pad

let c_total a = Linalg.Sparse.add a.c_gate a.c_fixed

let drain_into a t u =
  Array.iter
    (fun (src : Circuit.current_source) ->
      u.(src.inode) <- u.(src.inode) -. Waveform.eval src.wave t)
    a.isources

let inject_into a t u =
  Array.blit a.u_pad 0 u 0 a.n;
  drain_into a t u

let inject a t =
  let u = Linalg.Vec.create a.n in
  inject_into a t u;
  u

module Full = struct
  type system = {
    dim : int;
    nodes : int;
    a : Linalg.Sparse.t;
    c : Linalg.Sparse.t;
    rhs : float -> Linalg.Vec.t;
  }

  let assemble (circuit : Circuit.t) =
    let n = circuit.num_nodes in
    let nv = Array.length circuit.vsources in
    let nl = Array.length circuit.inductors in
    let dim = n + nv + nl in
    let ab = Linalg.Sparse_builder.create ~nrows:dim ~ncols:dim () in
    let cb = Linalg.Sparse_builder.create ~nrows:dim ~ncols:dim () in
    Array.iter
      (fun (r : Circuit.resistor) ->
        Linalg.Sparse_builder.stamp_conductance ab (opt_node r.rnode1) (opt_node r.rnode2)
          (1.0 /. r.ohms))
      circuit.resistors;
    Array.iter
      (fun (c : Circuit.capacitor) ->
        Linalg.Sparse_builder.stamp_conductance cb (opt_node c.cnode1) (opt_node c.cnode2)
          c.farads)
      circuit.capacitors;
    (* Branch row for pad k: v(node) - Rs * i_k = VDD; column couples the
       branch current into the node's KCL. *)
    Array.iteri
      (fun k (v : Circuit.vsource) ->
        let bk = n + k in
        Linalg.Sparse_builder.add ab v.vnode bk 1.0;
        Linalg.Sparse_builder.add ab bk v.vnode 1.0;
        if v.series_ohms > 0.0 then Linalg.Sparse_builder.add ab bk bk (-.v.series_ohms))
      circuit.vsources;
    (* Inductor branch k: KCL coupling at both nodes and the branch
       equation v1 - v2 - L di/dt = 0 (the -L lands in the C matrix). *)
    Array.iteri
      (fun k (l : Circuit.inductor) ->
        let bk = n + nv + k in
        if l.lnode1 <> Circuit.ground then begin
          Linalg.Sparse_builder.add ab l.lnode1 bk 1.0;
          Linalg.Sparse_builder.add ab bk l.lnode1 1.0
        end;
        if l.lnode2 <> Circuit.ground then begin
          Linalg.Sparse_builder.add ab l.lnode2 bk (-1.0);
          Linalg.Sparse_builder.add ab bk l.lnode2 (-1.0)
        end;
        Linalg.Sparse_builder.add cb bk bk (-.l.henries))
      circuit.inductors;
    let a = Linalg.Sparse_builder.to_csc ab in
    let c = Linalg.Sparse_builder.to_csc cb in
    let isources = circuit.isources in
    let vsources = circuit.vsources in
    let rhs t =
      let u = Linalg.Vec.create dim in
      Array.iter
        (fun (src : Circuit.current_source) ->
          u.(src.inode) <- u.(src.inode) -. Waveform.eval src.wave t)
        isources;
      Array.iteri (fun k (v : Circuit.vsource) -> u.(n + k) <- v.volts) vsources;
      u
    in
    { dim; nodes = n; a; c; rhs }
end
