(** The `opera serve` wire protocol: line-delimited JSON (JSONL), one
    request or response object per line, over a Unix-domain or TCP
    stream.

    Requests dispatch on their ["op"] member:
    - [{"op":"ping"}] — liveness probe, answered with {!pong};
    - [{"op":"stats"}] — service metrics snapshot, answered with one
      [{"stats": ...}] object ({!stats_line});
    - [{"op":"shutdown"}] — acknowledged with {!shutdown_ack}, then the
      server drains queued work and exits;
    - [{"op":"batch","batch":<JOBS.json document>}] — submit a batch;
      the optional ["reuse":false] member disables result-registry
      replay for this request (every job recomputes and re-journals).

    A batch response is the job records in batch order, one JSON object
    per line — byte-identical to the `opera batch` JSONL stream of the
    same document — terminated by one [{"done":true,"jobs":N}] line
    ({!done_line}).  Errors (malformed request, full admission queue,
    failed batch) are a single [{"error":"..."}] line ({!error_line});
    record lines never carry a ["done"] or ["error"] key, so clients
    read until either terminator. *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Batch of { jobs : Scenario.Job.t array; reuse : bool }

val parse : string -> (request, string) result
(** Parse one request line.  Batch documents go through
    {!Scenario.Job.batch_of_json}, so job-level validation errors (bad
    solver names, malformed sweeps) surface here, before admission. *)

val pong : string

val shutdown_ack : string

val error_line : string -> string

val done_line : jobs:int -> string

val stats_line : Util.Json.t -> string
(** Wrap a metrics-registry JSON document (parsed from
    {!Util.Metrics.to_json}) as a one-line [{"stats": ...}] response. *)
