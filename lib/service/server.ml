(* The `opera serve` daemon: a socket front-end over Scenario.Engine.

   One reader domain (the caller of [run]) owns the listeners and every
   connection: it accepts, splits the byte stream into request lines,
   answers ping/stats/shutdown inline and pushes batch submissions into
   the bounded admission queue.  One executor domain drains that queue
   FIFO and runs each batch through the engine with [resume] on, so a
   previously completed submission replays bitwise from the results
   registry — zero factorizations, zero solves — and streams to the
   owning client as records become available.

   Responses from both domains interleave safely through a
   per-connection write mutex; the registries behind [cfg.metrics] are
   not thread-safe, so every touch goes through one server-wide metrics
   mutex.  Shutdown (SIGTERM/SIGINT or the shutdown op) stops the
   accept loop, closes the queue, lets the executor finish everything
   admitted, then closes the sockets and removes the socket file. *)

exception Invalid_config of string

type config = {
  listen : string;
  tcp : int option;
  cache_dir : string option;
  cache_max_bytes : int option;
  max_results : int option;
  gc_every : int;
  queue_capacity : int;
  jobs_parallel : int;
  domains : int;
  warm_start : bool;
  metrics : Util.Metrics.t;
  handle_signals : bool;
}

let default_config =
  {
    listen = "opera.sock";
    tcp = None;
    cache_dir = None;
    cache_max_bytes = None;
    max_results = None;
    gc_every = 32;
    queue_capacity = 64;
    jobs_parallel = 0;
    domains = 0;
    warm_start = true;
    metrics = Util.Metrics.global;
    handle_signals = true;
  }

(* ---- connections ---------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  wlock : Mutex.t;  (* serializes reader-domain and executor-domain writes *)
  mutable alive : bool;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let unlink_quiet path = try Sys.remove path with Sys_error _ -> ()

(* Write a whole response line.  Raises on a dead peer (EPIPE &c) after
   marking the connection dead — inside an engine emit callback that
   exception is exactly what stops the batch from solving for a client
   that is no longer listening. *)
let write_line conn s =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if not conn.alive then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
      let line = s ^ "\n" in
      let len = String.length line in
      let off = ref 0 in
      try
        while !off < len do
          off := !off + Unix.write_substring conn.fd line !off (len - !off)
        done
      with Unix.Unix_error (_, _, _) as e ->
        conn.alive <- false;
        raise e)

let write_line_opt conn s =
  (* Reader-side variant: a vanished client is not an error worth more
     than dropping the connection. *)
  try write_line conn s with Unix.Unix_error (_, _, _) -> ()

(* ---- requests ------------------------------------------------------- *)

type job_request = {
  conn : conn;
  jobs : Scenario.Job.t array;
  reuse : bool;
  admitted : Util.Metrics.span;  (* queue wait + execution = request latency *)
}

type state = {
  cfg : config;
  queue : job_request Queue.t;
  mlock : Mutex.t;  (* guards cfg.metrics (registries are not thread-safe) *)
  stop : bool Atomic.t;
  mutable conns : conn list;  (* reader-domain only *)
}

let with_metrics state f =
  Mutex.lock state.mlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.mlock) (fun () -> f state.cfg.metrics)

(* ---- executor ------------------------------------------------------- *)

(* Artifacts belonging to the request being served must survive any
   concurrent budget enforcement; with eviction running between
   requests on the same domain, protecting the just-served batch's
   journal entries is enough to keep a pathologically small cap from
   eating its own request. *)
let protected_files jobs =
  let files =
    Array.to_list jobs
    |> List.map (fun job ->
           Scenario.Store.file_name ~kind:"result" ~key:(Scenario.Job.result_signature job))
  in
  fun f -> List.mem f files

let lifecycle_gc state ~served ~last_jobs =
  match state.cfg.cache_dir with
  | None -> ()
  | Some dir ->
      (match state.cfg.cache_max_bytes with
      | None -> ()
      | Some cap ->
          let removed =
            Scenario.Store.evict_dir ~dir ~max_bytes:cap ~protect:(protected_files last_jobs)
              ()
          in
          if removed > 0 then begin
            with_metrics state (fun m -> Util.Metrics.incr ~by:removed m "store.evicted");
            Util.Log.infof "serve: evicted %d artifact(s) over the %d-byte budget" removed cap
          end);
      (match state.cfg.max_results with
      | Some cap when state.cfg.gc_every > 0 && served mod state.cfg.gc_every = 0 ->
          let registry = Scenario.Registry.create ~dir:(Some dir) () in
          let removed = Scenario.Registry.sweep registry ~max_entries:cap in
          if removed > 0 then
            Util.Log.infof "serve: registry GC dropped %d journal entr%s" removed
              (if removed = 1 then "y" else "ies")
      | Some _ | None -> ())

let serve_batch state req =
  let reg = Util.Metrics.create () in
  let config =
    {
      Scenario.Engine.cache_dir = state.cfg.cache_dir;
      jobs_parallel = state.cfg.jobs_parallel;
      domains = state.cfg.domains;
      metrics = reg;
      warm_start = state.cfg.warm_start;
      precond = Linalg.Precond.Cholesky;
      resume = req.reuse && state.cfg.cache_dir <> None;
      shard = None;
    }
  in
  let emit r = write_line req.conn (Util.Json.render r.Scenario.Engine.record) in
  let finish outcome =
    with_metrics state (fun m ->
        Util.Metrics.merge_into reg ~into:m;
        ignore (Util.Metrics.stop_span m "service.request_s" req.admitted);
        match outcome with
        | Ok summary ->
            Util.Metrics.incr m "service.requests";
            Util.Metrics.incr ~by:summary.Scenario.Engine.replayed m "service.replays"
        | Error () -> Util.Metrics.incr m "service.errors")
  in
  match Scenario.Engine.run ~config ~emit req.jobs with
  | _, summary ->
      finish (Ok summary);
      write_line_opt req.conn (Protocol.done_line ~jobs:summary.Scenario.Engine.jobs);
      Util.Log.infof "serve: %s" (Scenario.Engine.summary_line summary)
  | exception Scenario.Engine.Invalid_batch msg ->
      finish (Error ());
      write_line_opt req.conn (Protocol.error_line msg)
  | exception Opera.Galerkin.Solver_diverged (what, _) ->
      finish (Error ());
      write_line_opt req.conn (Protocol.error_line (Printf.sprintf "solver diverged: %s" what))
  | exception Unix.Unix_error (_, _, _) ->
      (* The client hung up mid-stream; finished jobs are journaled, so
         nothing is lost — the resubmission replays them. *)
      finish (Error ());
      Util.Log.infof "serve: client vanished mid-batch (%d jobs submitted)"
        (Array.length req.jobs)
  | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
  | exception e ->
      (* opera-lint: banned — the daemon must outlive any one request *)
      finish (Error ());
      write_line_opt req.conn (Protocol.error_line (Printexc.to_string e));
      Util.Log.errorf "serve: batch failed: %s" (Printexc.to_string e)

let executor_loop state =
  let served = ref 0 in
  let rec loop () =
    match Queue.pop state.queue with
    | None -> ()
    | Some req ->
        serve_batch state req;
        incr served;
        lifecycle_gc state ~served:!served ~last_jobs:req.jobs;
        loop ()
  in
  loop ()

(* ---- reader --------------------------------------------------------- *)

let drop_conn state conn =
  conn.alive <- false;
  close_quiet conn.fd;
  state.conns <- List.filter (fun c -> c != conn) state.conns

let handle_request state conn line =
  match Protocol.parse line with
  | Error msg ->
      with_metrics state (fun m -> Util.Metrics.incr m "service.errors");
      write_line_opt conn (Protocol.error_line msg)
  | Ok Protocol.Ping -> write_line_opt conn Protocol.pong
  | Ok Protocol.Stats ->
      let doc =
        with_metrics state (fun m ->
            match Util.Json.parse (Util.Metrics.to_json m) with
            | Ok json -> json
            | Error _ -> Util.Json.Null)
      in
      write_line_opt conn (Protocol.stats_line doc)
  | Ok Protocol.Shutdown ->
      write_line_opt conn Protocol.shutdown_ack;
      Atomic.set state.stop true
  | Ok (Protocol.Batch { jobs; reuse }) ->
      let req = { conn; jobs; reuse; admitted = Util.Metrics.start_span () } in
      if Queue.push state.queue req then
        with_metrics state (fun m ->
            Util.Metrics.observe m "service.queue_depth"
              (float_of_int (Queue.length state.queue)))
      else begin
        with_metrics state (fun m -> Util.Metrics.incr m "service.rejects");
        write_line_opt conn (Protocol.error_line "queue full")
      end

(* Consume every complete line in the connection's buffer. *)
let drain_lines state conn =
  let data = Buffer.contents conn.buf in
  match String.rindex_opt data '\n' with
  | None -> ()
  | Some last ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf data (last + 1) (String.length data - last - 1);
      String.split_on_char '\n' (String.sub data 0 last)
      |> List.iter (fun line ->
             let line = String.trim line in
             if line <> "" then handle_request state conn line)

let read_chunk state conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_conn state conn
  | 0 -> drop_conn state conn
  | n ->
      Buffer.add_subbytes conn.buf chunk 0 n;
      drain_lines state conn

let accept_conn state lfd =
  (* opera-lint: resource — fd tracked in state.conns; drop_conn/shutdown close it *)
  match Unix.accept lfd with
  | exception Unix.Unix_error (_, _, _) -> ()
  | accepted ->
      let fd = fst accepted in
      let conn = { fd; buf = Buffer.create 256; wlock = Mutex.create (); alive = true } in
      state.conns <- conn :: state.conns;
      with_metrics state (fun m -> Util.Metrics.incr m "service.connections")

let reader_loop state listeners =
  let rec loop () =
    if not (Atomic.get state.stop) then begin
      let fds = listeners @ List.map (fun c -> c.fd) state.conns in
      (match Unix.select fds [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if List.memq fd listeners then accept_conn state fd
              else
                match List.find_opt (fun c -> c.fd == fd) state.conns with
                | Some conn -> read_chunk state conn
                | None -> ())
            ready);
      loop ()
    end
  in
  loop ()

(* ---- listeners ------------------------------------------------------ *)

let finish_listener fd addr =
  (* Bind/listen failures must not leak the socket fd. *)
  match
    Unix.bind fd addr;
    Unix.listen fd 64
  with
  | () -> fd
  | exception e ->
      close_quiet fd;
      raise e

let bind_unix path =
  if Sys.file_exists path then begin
    match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK ->
        (* A socket file with no server behind it is debris from a dead
           process; reclaim it.  (A live server would raise EADDRINUSE
           on some systems — and simply lose the name on others — so
           callers should own the path.) *)
        unlink_quiet path
    | _ -> raise (Invalid_config (path ^ ": exists and is not a socket"))
    | exception Unix.Unix_error (_, _, _) -> ()
  end;
  (* opera-lint: resource — the fd escapes to run, which Fun.protects it *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  finish_listener fd (Unix.ADDR_UNIX path)

let bind_tcp port =
  (* opera-lint: resource — the fd escapes to run, which Fun.protects it *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  finish_listener fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

(* ---- lifecycle ------------------------------------------------------ *)

let validate cfg =
  if cfg.queue_capacity < 1 then
    raise (Invalid_config "queue capacity must be >= 1");
  if cfg.listen = "" then raise (Invalid_config "empty socket path");
  (match cfg.tcp with
  | Some p when p < 1 || p > 65535 ->
      raise (Invalid_config (Printf.sprintf "TCP port %d out of range" p))
  | Some _ | None -> ());
  (match cfg.cache_max_bytes with
  | Some b when b < 0 -> raise (Invalid_config "--cache-max-bytes must be >= 0")
  | Some _ | None -> ());
  match cfg.cache_dir with
  | None when cfg.cache_max_bytes <> None ->
      raise (Invalid_config "--cache-max-bytes needs --cache-dir")
  | None when cfg.max_results <> None ->
      raise (Invalid_config "--max-results needs --cache-dir")
  | None | Some _ -> ()

let install_signals state =
  let request_stop = Sys.Signal_handle (fun _ -> Atomic.set state.stop true) in
  Sys.set_signal Sys.sigterm request_stop;
  Sys.set_signal Sys.sigint request_stop;
  (* A client hanging up mid-stream must surface as EPIPE on the write,
     not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let serve state listeners =
  if state.cfg.handle_signals then install_signals state;
  let executor = Domain.spawn (fun () -> executor_loop state) in
  Fun.protect
    ~finally:(fun () ->
      (* Drain: no new admissions, finish everything queued, then drop
         the connections.  Executor writes race nothing here — join
         comes first. *)
      Queue.close state.queue;
      Domain.join executor;
      List.iter (fun c -> drop_conn state c) state.conns)
    (fun () -> reader_loop state listeners)

let run cfg =
  validate cfg;
  let state =
    {
      cfg;
      queue = Queue.create ~capacity:cfg.queue_capacity;
      mlock = Mutex.create ();
      stop = Atomic.make false;
      conns = [];
    }
  in
  let unix_fd = bind_unix cfg.listen in
  Fun.protect
    ~finally:(fun () ->
      close_quiet unix_fd;
      unlink_quiet cfg.listen)
    (fun () ->
      match cfg.tcp with
      | None -> serve state [ unix_fd ]
      | Some port ->
          let tcp_fd = bind_tcp port in
          Fun.protect
            ~finally:(fun () -> close_quiet tcp_fd)
            (fun () -> serve state [ unix_fd; tcp_fd ]))
