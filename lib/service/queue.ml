(* Bounded multi-producer / multi-consumer FIFO — the admission queue
   between the socket reader and the engine executor.

   Admission never blocks: a full (or closed) queue rejects the push so
   the reader can answer the client with a queue-full error instead of
   stalling every connection behind one slow batch.  Consumers block in
   [pop] until an item arrives or the queue is closed and drained —
   [close] is how shutdown tells the executor "finish what's queued,
   then stop". *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Stdlib.Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Service.Queue.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Stdlib.Queue.create ();
    capacity;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t (fun () ->
      if t.closed || Stdlib.Queue.length t.items >= t.capacity then false
      else begin
        Stdlib.Queue.add x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        match Stdlib.Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Stdlib.Queue.length t.items)
