(** The `opera serve` daemon: a long-running analysis service over
    {!Scenario.Engine}.

    {!run} listens on a Unix-domain socket (and optionally TCP on the
    loopback interface), speaks the line-delimited JSON protocol of
    {!Protocol}, and pushes batch submissions through a bounded
    admission queue into a single executor domain.  With a cache
    directory configured, every submission runs with result-registry
    replay: a batch that was already served streams back bitwise — zero
    factorizations, zero solves — at registry-read speed.

    Disk budget: after each request the executor enforces the byte cap
    with {!Scenario.Store.evict} (LRU by mtime; the just-served
    request's journal entries are protected), and every [gc_every]
    requests it bounds the journal's entry count with
    {!Scenario.Registry.sweep}.

    Observability (through [config.metrics]): counters
    [service.requests], [service.replays], [service.rejects],
    [service.errors], [service.connections]; histograms
    [service.queue_depth] (admission-time depth) and
    [service.request_s] (admission-to-completion latency); plus every
    [engine.*] / [store.*] / [registry.*] metric of the underlying
    runs, merged per request.

    Shutdown: SIGTERM, SIGINT or a [{"op":"shutdown"}] request stop the
    accept loop, drain everything already admitted, close the
    connections and remove the socket file. *)

exception Invalid_config of string
(** A configuration {!run} refuses to start with (bad queue capacity,
    out-of-range TCP port, a listen path occupied by a non-socket, a
    disk budget without a cache dir).  Raised before any socket is
    bound, so the CLI maps it to the usage-error discipline (exit 2). *)

type config = {
  listen : string;  (** Unix-domain socket path *)
  tcp : int option;  (** also listen on 127.0.0.1:port *)
  cache_dir : string option;
      (** artifact store + results registry; [None] disables result
          reuse (every submission recomputes) *)
  cache_max_bytes : int option;
      (** byte cap enforced by LRU eviction after every request *)
  max_results : int option;
      (** journal entry-count cap enforced every [gc_every] requests *)
  gc_every : int;  (** registry-GC period in requests; [<= 0] disables *)
  queue_capacity : int;  (** admission queue bound; full queue = reject *)
  jobs_parallel : int;  (** {!Scenario.Engine.config.jobs_parallel} *)
  domains : int;  (** {!Scenario.Engine.config.domains} *)
  warm_start : bool;
  metrics : Util.Metrics.t;
  handle_signals : bool;
      (** install SIGTERM/SIGINT drain handlers and ignore SIGPIPE;
          disable for in-process embedding (tests, benches) *)
}

val default_config : config
(** [opera.sock], no TCP, no cache, queue of 64, registry GC every 32
    requests, engine defaults, global metrics, signals handled. *)

val run : config -> unit
(** Bind, serve, block until shutdown, drain, clean up.  Raises
    {!Invalid_config} on a refused configuration and propagates
    [Unix.Unix_error] from a failed bind (e.g. address in use). *)
