(** Bounded thread-safe FIFO: the admission queue between the socket
    reader and the engine executor.  Pushes never block (a full or
    closed queue rejects); pops block until an item arrives or the
    queue is closed and drained. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Enqueue without blocking; [false] when the queue is full or closed
    (the item is NOT admitted). *)

val pop : 'a t -> 'a option
(** Block until an item is available (FIFO) or the queue is closed with
    nothing left; [None] means "closed and drained" — consumers should
    exit. *)

val close : 'a t -> unit
(** Reject all future pushes and wake every blocked consumer; items
    already queued are still delivered. *)

val length : 'a t -> int
