(* The service wire protocol: line-delimited JSON, one request or
   response per line.

   Requests are small JSON objects dispatched on their "op" member;
   batch submissions embed the very same document `opera batch` reads
   from JOBS.json, so a file-driven workflow moves to the socket
   unchanged.  Responses reuse Util.Json.render, which is deterministic
   and renders floats exactly — record lines answered from the results
   registry are byte-identical to the lines a cold run streamed. *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Batch of { jobs : Scenario.Job.t array; reuse : bool }

let parse line =
  match Util.Json.parse line with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok json -> (
      match Util.Json.member "op" json with
      | None -> Error "missing \"op\" member"
      | Some op -> (
          match Util.Json.to_string op with
          | None -> Error "\"op\" must be a string"
          | Some "ping" -> Ok Ping
          | Some "stats" -> Ok Stats
          | Some "shutdown" -> Ok Shutdown
          | Some "batch" -> (
              let reuse =
                match Util.Json.member "reuse" json with
                | Some (Util.Json.Bool b) -> b
                | Some _ | None -> true
              in
              match Util.Json.member "batch" json with
              | None -> Error "batch request needs a \"batch\" member (the JOBS.json document)"
              | Some doc -> (
                  match Scenario.Job.batch_of_json doc with
                  | Error msg -> Error msg
                  | Ok jobs -> Ok (Batch { jobs; reuse })))
          | Some op -> Error (Printf.sprintf "unknown op %S" op)))

(* ---- response lines (no trailing newline; the server appends it) ---- *)

let pong = Util.Json.render (Util.Json.Obj [ ("pong", Util.Json.Bool true) ])

let shutdown_ack =
  Util.Json.render
    (Util.Json.Obj [ ("ok", Util.Json.Bool true); ("draining", Util.Json.Bool true) ])

let error_line msg = Util.Json.render (Util.Json.Obj [ ("error", Util.Json.Str msg) ])

let done_line ~jobs =
  Util.Json.render
    (Util.Json.Obj
       [ ("done", Util.Json.Bool true); ("jobs", Util.Json.Num (float_of_int jobs)) ])

let stats_line stats = Util.Json.render (Util.Json.Obj [ ("stats", stats) ])
