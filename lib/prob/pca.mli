(** Principal component analysis.

    The paper assumes uncorrelated parameter variations and notes that
    correlated ones "can always be transformed into a set of uncorrelated
    random variables by an orthogonal transformation technique like
    principal component analysis" — this module is that technique. *)

type t = {
  mean : float array;
  components : Linalg.Dense.t;  (** columns are eigenvectors, descending variance *)
  variances : float array;  (** eigenvalues, descending *)
}

val of_covariance : mean:float array -> Linalg.Dense.t -> t
(** Decompose a covariance matrix directly. *)

val of_samples : float array array -> t
(** Estimate the covariance from observation vectors and decompose it. *)

val transform : t -> float array -> float array
(** Project an observation onto the principal axes (mean removed). *)

val inverse_transform : t -> float array -> float array

val whiten : t -> float array -> float array
(** Like {!transform} but scaled to unit variance per axis; components with
    negligible variance map to 0. *)

val decorrelate_gaussian : t -> Rng.t -> float array
(** Draw a sample of the original correlated Gaussian vector by sampling
    independent standard normals on the principal axes. *)
