type t = { bases : int array; mutable index : int }

let primes = [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71;
                73; 79; 83; 89; 97 |]

let create ?(skip = 32) ~dim () =
  if dim < 1 || dim > Array.length primes then
    invalid_arg (Printf.sprintf "Halton.create: dim must be in 1..%d" (Array.length primes));
  { bases = Array.sub primes 0 dim; index = skip }

(* Radical inverse of [n] in base [b]. *)
let radical_inverse b n =
  let fb = float_of_int b in
  let rec go n f acc = if n = 0 then acc else go (n / b) (f /. fb) (acc +. (f *. float_of_int (n mod b))) in
  go n (1.0 /. fb) 0.0

let next t =
  t.index <- t.index + 1;
  Array.map (fun b -> radical_inverse b t.index) t.bases

let next_gaussian t =
  let point = next t in
  Array.map (fun u -> Normal.ppf (Float.max 1e-12 (Float.min (1.0 -. 1e-12) u))) point
