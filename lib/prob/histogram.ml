type t = { lo : float; hi : float; nbins : int; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; nbins = bins; counts = Array.make bins 0; total = 0 }

let add h x =
  let idx =
    int_of_float (float_of_int h.nbins *. ((x -. h.lo) /. (h.hi -. h.lo)))
    |> Int.max 0
    |> Int.min (h.nbins - 1)
  in
  h.counts.(idx) <- h.counts.(idx) + 1;
  h.total <- h.total + 1

let add_all h xs = Array.iter (add h) xs

let count h = h.total

let bins h = h.nbins

let bin_center h i =
  if i < 0 || i >= h.nbins then invalid_arg "Histogram.bin_center: out of range";
  h.lo +. ((float_of_int i +. 0.5) *. (h.hi -. h.lo) /. float_of_int h.nbins)

let counts h = Array.copy h.counts

let percentages h =
  if h.total = 0 then Array.make h.nbins 0.0
  else Array.map (fun c -> 100.0 *. float_of_int c /. float_of_int h.total) h.counts

let max_percentage_gap a b =
  if a.nbins <> b.nbins then invalid_arg "Histogram.max_percentage_gap: binning mismatch";
  let pa = percentages a and pb = percentages b in
  let gap = ref 0.0 in
  Array.iteri (fun i p -> gap := Float.max !gap (Float.abs (p -. pb.(i)))) pa;
  !gap

let bar width frac =
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  String.make (Int.max 0 (Int.min width n)) '#'

let render ?(width = 50) ?(labels = true) h =
  let pct = percentages h in
  let peak = Array.fold_left Float.max 1e-12 pct in
  let buf = Buffer.create 1024 in
  for i = 0 to h.nbins - 1 do
    if labels then Buffer.add_string buf (Printf.sprintf "%8.3f | " (bin_center h i));
    Buffer.add_string buf (bar width (pct.(i) /. peak));
    Buffer.add_string buf (Printf.sprintf "  %.1f%%\n" pct.(i))
  done;
  Buffer.contents buf

let render_pair ?(width = 30) ~a ~b ~a_label ~b_label () =
  if a.nbins <> b.nbins then invalid_arg "Histogram.render_pair: binning mismatch";
  let pa = percentages a and pb = percentages b in
  let peak = Float.max (Array.fold_left Float.max 1e-12 pa) (Array.fold_left Float.max 1e-12 pb) in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "%8s | %-*s | %-*s\n" "center" width a_label width b_label);
  for i = 0 to a.nbins - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%8.3f | %-*s | %-*s  %5.1f%% vs %5.1f%%\n" (bin_center a i) width
         (bar width (pa.(i) /. peak))
         width
         (bar width (pb.(i) /. peak))
         pa.(i) pb.(i))
  done;
  Buffer.contents buf
