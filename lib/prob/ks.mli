(** Two-sample Kolmogorov–Smirnov test, used to check that the OPERA
    response distribution matches Monte Carlo beyond the first two
    moments. *)

val statistic : float array -> float array -> float
(** Maximum distance between the two empirical CDFs. *)

val p_value : float array -> float array -> float
(** Asymptotic p-value for the two-sample test (Kolmogorov distribution
    with the usual small-sample correction). *)
