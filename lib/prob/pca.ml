type t = { mean : float array; components : Linalg.Dense.t; variances : float array }

let of_covariance ~mean cov =
  let n, m = Linalg.Dense.dims cov in
  if n <> m || Array.length mean <> n then invalid_arg "Pca.of_covariance: dimension mismatch";
  let values, vectors = Linalg.Eig.symmetric cov in
  (* Eig returns ascending; flip to descending variance. *)
  let components = Linalg.Dense.init n n (fun i j -> Linalg.Dense.get vectors i (n - 1 - j)) in
  let variances = Array.init n (fun j -> Float.max 0.0 values.(n - 1 - j)) in
  { mean; components; variances }

let of_samples samples =
  let cov = Stats.covariance_matrix samples in
  let d = Array.length samples.(0) in
  let mean = Array.make d 0.0 in
  Array.iter
    (fun s ->
      for j = 0 to d - 1 do
        mean.(j) <- mean.(j) +. s.(j)
      done)
    samples;
  for j = 0 to d - 1 do
    mean.(j) <- mean.(j) /. float_of_int (Array.length samples)
  done;
  of_covariance ~mean cov

let transform t x =
  let centered = Linalg.Vec.sub x t.mean in
  Linalg.Dense.matvec_t t.components centered

let inverse_transform t y = Linalg.Vec.add (Linalg.Dense.matvec t.components y) t.mean

let whiten t x =
  let y = transform t x in
  Array.mapi (fun j v -> if t.variances.(j) < 1e-300 then 0.0 else v /. sqrt t.variances.(j)) y

let decorrelate_gaussian t rng =
  let d = Array.length t.mean in
  let z = Array.init d (fun j -> sqrt t.variances.(j) *. Rng.gaussian rng) in
  inverse_transform t z
