type moments = { mean : float; variance : float; skewness : float; kurtosis_excess : float }

let hermite_he n x =
  if n < 0 then invalid_arg "Gram_charlier.hermite_he: negative order";
  let rec go k hk hk1 =
    (* hk = He_k, hk1 = He_{k-1} *)
    if k = n then hk
    else go (k + 1) ((x *. hk) -. (float_of_int k *. hk1)) hk
  in
  if n = 0 then 1.0 else go 1 x 1.0

let check m =
  if m.variance <= 0.0 then invalid_arg "Gram_charlier: variance must be positive"

let gram_charlier_pdf m x =
  check m;
  let sigma = sqrt m.variance in
  let z = (x -. m.mean) /. sigma in
  let base = Normal.pdf z /. sigma in
  base
  *. (1.0
     +. (m.skewness /. 6.0 *. hermite_he 3 z)
     +. (m.kurtosis_excess /. 24.0 *. hermite_he 4 z))

let edgeworth_pdf m x =
  check m;
  let sigma = sqrt m.variance in
  let z = (x -. m.mean) /. sigma in
  let base = Normal.pdf z /. sigma in
  base
  *. (1.0
     +. (m.skewness /. 6.0 *. hermite_he 3 z)
     +. (m.kurtosis_excess /. 24.0 *. hermite_he 4 z)
     +. (m.skewness *. m.skewness /. 72.0 *. hermite_he 6 z))
