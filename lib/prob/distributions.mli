(** Probability distributions over the reals.

    The Askey scheme pairs each of these with an orthogonal polynomial
    family; the variation models sample them and the chaos bases integrate
    against them. *)

type t =
  | Gaussian of { mu : float; sigma : float }
  | Lognormal of { mu : float; sigma : float }
      (** [exp N(mu, sigma^2)]; the paper's leakage-current model. *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { rate : float }
  | Gamma of { shape : float; scale : float }
  | Beta of { alpha : float; beta : float }

val sample : Rng.t -> t -> float

val pdf : t -> float -> float

val mean : t -> float

val variance : t -> float

val name : t -> string
