let statistic xs ys =
  if Array.length xs = 0 || Array.length ys = 0 then invalid_arg "Ks.statistic: empty sample";
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort compare a;
  Array.sort compare b;
  let na = Array.length a and nb = Array.length b in
  let fa = float_of_int na and fb = float_of_int nb in
  let i = ref 0 and j = ref 0 and d = ref 0.0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    let diff = Float.abs ((float_of_int !i /. fa) -. (float_of_int !j /. fb)) in
    if diff > !d then d := diff
  done;
  !d

(* Q_KS survival function of the Kolmogorov distribution. *)
let q_ks lambda =
  if lambda < 1e-8 then 1.0
  else begin
    let acc = ref 0.0 in
    for k = 1 to 100 do
      let fk = float_of_int k in
      let term = (if k mod 2 = 1 then 2.0 else -2.0) *. exp (-2.0 *. fk *. fk *. lambda *. lambda) in
      acc := !acc +. term
    done;
    Float.max 0.0 (Float.min 1.0 !acc)
  end

let p_value xs ys =
  let d = statistic xs ys in
  let na = float_of_int (Array.length xs) and nb = float_of_int (Array.length ys) in
  let ne = na *. nb /. (na +. nb) in
  let sqrt_ne = sqrt ne in
  q_ks ((sqrt_ne +. 0.12 +. (0.11 /. sqrt_ne)) *. d)
