(* erfc via the Chebyshev-fit approximation of Numerical Recipes (erfcc):
   accurate to ~1.2e-7 relative, which is ample for statistics plumbing. *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. (t
       *. (1.00002368
          +. (t
             *. (0.37409196
                +. (t
                   *. (0.09678418
                      +. (t
                         *. (-0.18628806
                            +. (t
                               *. (0.27886807
                                  +. (t
                                     *. (-1.13520398
                                        +. (t
                                           *. (1.48851587
                                              +. (t *. (-0.82215223 +. (t *. 0.17087277)))))))))))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

(* Lanczos g=5, n=6 coefficients. *)
let lanczos = [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
                 -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]

let log_gamma x =
  if x <= 0.0 then invalid_arg "Special_functions.log_gamma: requires x > 0";
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    lanczos;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let gamma x = exp (log_gamma x)

let factorial_table =
  let t = Array.make 171 1.0 in
  for i = 1 to 170 do
    t.(i) <- t.(i - 1) *. float_of_int i
  done;
  t

let factorial n =
  if n < 0 then invalid_arg "Special_functions.factorial: negative argument";
  if n <= 170 then factorial_table.(n) else infinity

let log_factorial n =
  if n < 0 then invalid_arg "Special_functions.log_factorial: negative argument";
  if n <= 170 then log factorial_table.(n) else log_gamma (float_of_int n +. 1.0)

let binomial n k =
  if k < 0 || k > n then 0.0
  else if n <= 170 then factorial_table.(n) /. (factorial_table.(k) *. factorial_table.(n - k))
  else Float.round (exp (log_factorial n -. log_factorial k -. log_factorial (n - k)))
