type t =
  | Gaussian of { mu : float; sigma : float }
  | Lognormal of { mu : float; sigma : float }
  | Uniform of { lo : float; hi : float }
  | Exponential of { rate : float }
  | Gamma of { shape : float; scale : float }
  | Beta of { alpha : float; beta : float }

(* Marsaglia–Tsang for Gamma(shape >= 1); boosting for shape < 1. *)
let rec sample_gamma rng shape scale =
  if shape < 1.0 then begin
    let u = Rng.float rng in
    sample_gamma rng (shape +. 1.0) scale *. (u ** (1.0 /. shape))
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = Rng.gaussian rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v3 = v *. v *. v in
        let u = Rng.float rng in
        if u < 1.0 -. (0.0331 *. x *. x *. x *. x) then d *. v3
        else if log u < (0.5 *. x *. x) +. (d *. (1.0 -. v3 +. log v3)) then d *. v3
        else loop ()
      end
    in
    scale *. loop ()
  end

let sample rng = function
  | Gaussian { mu; sigma } -> mu +. (sigma *. Rng.gaussian rng)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. Rng.gaussian rng))
  | Uniform { lo; hi } -> Rng.float_range rng lo hi
  | Exponential { rate } -> -.log (1.0 -. Rng.float rng) /. rate
  | Gamma { shape; scale } -> sample_gamma rng shape scale
  | Beta { alpha; beta } ->
      let x = sample_gamma rng alpha 1.0 in
      let y = sample_gamma rng beta 1.0 in
      x /. (x +. y)

let pdf dist x =
  match dist with
  | Gaussian { mu; sigma } ->
      let z = (x -. mu) /. sigma in
      exp (-0.5 *. z *. z) /. (sigma *. 2.5066282746310002)
  | Lognormal { mu; sigma } ->
      if x <= 0.0 then 0.0
      else begin
        let z = (log x -. mu) /. sigma in
        exp (-0.5 *. z *. z) /. (x *. sigma *. 2.5066282746310002)
      end
  | Uniform { lo; hi } -> if x >= lo && x <= hi then 1.0 /. (hi -. lo) else 0.0
  | Exponential { rate } -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x)
  | Gamma { shape; scale } ->
      if x <= 0.0 then 0.0
      else
        exp
          (((shape -. 1.0) *. log (x /. scale))
          -. (x /. scale)
          -. Special_functions.log_gamma shape)
        /. scale
  | Beta { alpha; beta } ->
      if x <= 0.0 || x >= 1.0 then 0.0
      else begin
        let log_b =
          Special_functions.log_gamma alpha
          +. Special_functions.log_gamma beta
          -. Special_functions.log_gamma (alpha +. beta)
        in
        exp (((alpha -. 1.0) *. log x) +. ((beta -. 1.0) *. log (1.0 -. x)) -. log_b)
      end

let mean = function
  | Gaussian { mu; _ } -> mu
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { rate } -> 1.0 /. rate
  | Gamma { shape; scale } -> shape *. scale
  | Beta { alpha; beta } -> alpha /. (alpha +. beta)

let variance = function
  | Gaussian { sigma; _ } -> sigma *. sigma
  | Lognormal { mu; sigma } ->
      let s2 = sigma *. sigma in
      (exp s2 -. 1.0) *. exp ((2.0 *. mu) +. s2)
  | Uniform { lo; hi } ->
      let w = hi -. lo in
      w *. w /. 12.0
  | Exponential { rate } -> 1.0 /. (rate *. rate)
  | Gamma { shape; scale } -> shape *. scale *. scale
  | Beta { alpha; beta } ->
      let s = alpha +. beta in
      alpha *. beta /. (s *. s *. (s +. 1.0))

let name = function
  | Gaussian _ -> "gaussian"
  | Lognormal _ -> "lognormal"
  | Uniform _ -> "uniform"
  | Exponential _ -> "exponential"
  | Gamma _ -> "gamma"
  | Beta _ -> "beta"
