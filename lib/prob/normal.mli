(** The standard normal distribution. *)

val pdf : float -> float

val cdf : float -> float
(** [cdf x] = P(Z <= x). *)

val ppf : float -> float
(** Inverse CDF (quantile function) via the Acklam rational approximation
    refined with one Halley step; |error| < 1e-12 on (0, 1).
    Raises [Invalid_argument] outside (0, 1). *)

val sample : Rng.t -> mu:float -> sigma:float -> float
