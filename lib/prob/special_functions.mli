(** Special functions needed by the probability layer. *)

val erf : float -> float
(** Error function, |relative error| < 1.2e-7 everywhere (Numerical Recipes
    erfc approximation, sign-extended). *)

val erfc : float -> float

val log_gamma : float -> float
(** Lanczos approximation of [log (Gamma x)] for [x > 0]. *)

val gamma : float -> float

val factorial : int -> float
(** Exact up to 170!, [infinity] beyond. Raises on negative input. *)

val log_factorial : int -> float

val binomial : int -> int -> float
(** [binomial n k] = n choose k as a float (exact for small arguments). *)
