(** Fixed-bin histograms; the Figure 1/2 reproduction compares the OPERA
    and Monte-Carlo voltage-drop histograms built here. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Uniform bins over [lo, hi); out-of-range samples are clamped into the
    first/last bin. Requires [bins > 0] and [hi > lo]. *)

val add : t -> float -> unit

val add_all : t -> float array -> unit

val count : t -> int
(** Total number of samples recorded. *)

val bins : t -> int

val bin_center : t -> int -> float

val counts : t -> int array

val percentages : t -> float array
(** Bin occupancy as % of total samples (the paper's "% of occurrences"). *)

val max_percentage_gap : t -> t -> float
(** Largest per-bin difference of the percentage curves; used to quantify
    how well the OPERA histogram tracks the MC one. *)

val render : ?width:int -> ?labels:bool -> t -> string
(** ASCII bar rendering, one bin per line. *)

val render_pair : ?width:int -> a:t -> b:t -> a_label:string -> b_label:string -> unit -> string
(** Side-by-side rendering of two histograms with the same binning. *)
