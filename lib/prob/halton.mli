(** Halton low-discrepancy sequences (quasi-Monte Carlo).

    A deterministic point set whose empirical distribution converges to
    uniform at ~1/N instead of 1/sqrt(N): the classical upgrade to the
    paper's Monte-Carlo baseline for smooth integrands.  Gaussian points
    come from the inverse normal CDF. *)

type t

val create : ?skip:int -> dim:int -> unit -> t
(** A [dim]-dimensional sequence using the first [dim] primes as bases;
    the first [skip] points are discarded (default 32, avoids the early
    correlated prefix). Supports up to 25 dimensions. *)

val next : t -> float array
(** Next point in the open unit hypercube (0, 1)^dim. *)

val next_gaussian : t -> float array
(** Next point mapped through the inverse normal CDF: a quasi-random
    standard-normal vector. *)
