module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable m3 : float;
    mutable m4 : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; m3 = 0.0; m4 = 0.0 }

  (* Pébay's single-pass update of central moment sums. *)
  let add t x =
    let n1 = float_of_int t.n in
    t.n <- t.n + 1;
    let n = float_of_int t.n in
    let delta = x -. t.mean in
    let delta_n = delta /. n in
    let delta_n2 = delta_n *. delta_n in
    let term1 = delta *. delta_n *. n1 in
    t.mean <- t.mean +. delta_n;
    t.m4 <-
      t.m4
      +. (term1 *. delta_n2 *. ((n *. n) -. (3.0 *. n) +. 3.0))
      +. (6.0 *. delta_n2 *. t.m2)
      -. (4.0 *. delta_n *. t.m3);
    t.m3 <- t.m3 +. (term1 *. delta_n *. (n -. 2.0)) -. (3.0 *. delta_n *. t.m2);
    t.m2 <- t.m2 +. term1

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let n = na +. nb in
      let delta = b.mean -. a.mean in
      let d2 = delta *. delta in
      let m2 = a.m2 +. b.m2 +. (d2 *. na *. nb /. n) in
      let m3 =
        a.m3 +. b.m3
        +. (d2 *. delta *. na *. nb *. (na -. nb) /. (n *. n))
        +. (3.0 *. delta *. ((na *. b.m2) -. (nb *. a.m2)) /. n)
      in
      let m4 =
        a.m4 +. b.m4
        +. (d2 *. d2 *. na *. nb *. ((na *. na) -. (na *. nb) +. (nb *. nb)) /. (n *. n *. n))
        +. (6.0 *. d2 *. ((na *. na *. b.m2) +. (nb *. nb *. a.m2)) /. (n *. n))
        +. (4.0 *. delta *. ((na *. b.m3) -. (nb *. a.m3)) /. n)
      in
      { n = a.n + b.n; mean = a.mean +. (delta *. nb /. n); m2; m3; m4 }
    end

  let count t = t.n

  let mean t = t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n

  let sample_variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let std t = sqrt (variance t)

  let skewness t =
    let v = variance t in
    if v <= 0.0 then 0.0 else t.m3 /. float_of_int t.n /. (v ** 1.5)

  let kurtosis_excess t =
    let v = variance t in
    if v <= 0.0 then 0.0 else (t.m4 /. float_of_int t.n /. (v *. v)) -. 3.0

  let central_moment t = function
    | 2 -> variance t
    | 3 -> if t.n = 0 then 0.0 else t.m3 /. float_of_int t.n
    | 4 -> if t.n = 0 then 0.0 else t.m4 /. float_of_int t.n
    | k -> invalid_arg (Printf.sprintf "Stats.Online.central_moment: order %d unsupported" k)
end

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (Array.length xs)

let std xs = sqrt (variance xs)

let covariance_matrix samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.covariance_matrix: no samples";
  let d = Array.length samples.(0) in
  let mu = Array.make d 0.0 in
  Array.iter
    (fun s ->
      if Array.length s <> d then invalid_arg "Stats.covariance_matrix: ragged samples";
      for j = 0 to d - 1 do
        mu.(j) <- mu.(j) +. s.(j)
      done)
    samples;
  for j = 0 to d - 1 do
    mu.(j) <- mu.(j) /. float_of_int n
  done;
  Linalg.Dense.init d d (fun i j ->
      let acc = ref 0.0 in
      Array.iter (fun s -> acc := !acc +. ((s.(i) -. mu.(i)) *. (s.(j) -. mu.(j)))) samples;
      !acc /. float_of_int n)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q must lie in [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Int.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let correlation xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  !sxy /. sqrt (!sxx *. !syy)
