(** Gram–Charlier A and Edgeworth density expansions.

    The paper proposes these series for recovering the probability density
    of the voltage response from the moments that the polynomial-chaos
    expansion provides directly. *)

type moments = { mean : float; variance : float; skewness : float; kurtosis_excess : float }

val gram_charlier_pdf : moments -> float -> float
(** Four-moment Gram–Charlier A density. May go slightly negative far in
    the tails for strongly non-Gaussian moments; values are not clamped. *)

val edgeworth_pdf : moments -> float -> float
(** Edgeworth expansion to the same order (adds the skewness-squared
    correction term). *)

val hermite_he : int -> float -> float
(** Probabilists' Hermite polynomial, exposed for tests. *)
