type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* second Gaussian of the polar pair *)
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64: seeds the state and generates split streams. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let default_seed = 0x5EED0F0CA1L

let create ?(seed = default_seed) () = of_seed seed

let copy r = { r with spare = r.spare }

let uint64 r =
  let result = Int64.mul (rotl (Int64.mul r.s1 5L) 7) 9L in
  let t = Int64.shift_left r.s1 17 in
  r.s2 <- Int64.logxor r.s2 r.s0;
  r.s3 <- Int64.logxor r.s3 r.s1;
  r.s1 <- Int64.logxor r.s1 r.s2;
  r.s0 <- Int64.logxor r.s0 r.s3;
  r.s2 <- Int64.logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let split r = of_seed (uint64 r)

let float r =
  (* 53 high bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (uint64 r) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range r lo hi = lo +. ((hi -. lo) *. float r)

let int r n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^64. *)
  let v = Int64.rem (Int64.logand (uint64 r) Int64.max_int) (Int64.of_int n) in
  Int64.to_int v

let gaussian r =
  match r.spare with
  | Some g ->
      r.spare <- None;
      g
  | None ->
      let rec draw () =
        let u = (2.0 *. float r) -. 1.0 in
        let v = (2.0 *. float r) -. 1.0 in
        let s = (u *. u) +. (v *. v) in
        if s >= 1.0 || Util.Floats.is_zero s then draw ()
        else begin
          let m = sqrt (-2.0 *. log s /. s) in
          r.spare <- Some (v *. m);
          u *. m
        end
      in
      draw ()

let gaussian_vector r n = Array.init n (fun _ -> gaussian r)

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done
