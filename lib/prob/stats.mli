(** Streaming and batch statistics.

    The Monte-Carlo engine accumulates per-node, per-timestep moments with
    {!Online}; the comparison harness reduces them with the batch helpers. *)

module Online : sig
  (** Welford-style online accumulation of the first four central moments. *)

  type t

  val create : unit -> t

  val add : t -> float -> unit

  val merge : t -> t -> t
  (** Combine two accumulators as if their streams were concatenated. *)

  val count : t -> int

  val mean : t -> float

  val variance : t -> float
  (** Population variance (divides by n). 0 for fewer than 2 samples. *)

  val sample_variance : t -> float
  (** Unbiased variance (divides by n-1). *)

  val std : t -> float

  val skewness : t -> float

  val kurtosis_excess : t -> float

  val central_moment : t -> int -> float
  (** Central moments of order 2, 3 or 4. *)
end

val mean : float array -> float

val variance : float array -> float
(** Population variance. *)

val std : float array -> float

val covariance_matrix : float array array -> Linalg.Dense.t
(** [covariance_matrix samples] where [samples.(k)] is the k-th observation
    vector; returns the (population) covariance of the components. *)

val quantile : float array -> float -> float
(** [quantile xs q] with linear interpolation; [q] in [0, 1]. The input is
    not modified. *)

val correlation : float array -> float array -> float
