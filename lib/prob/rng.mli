(** Deterministic, splittable pseudo-random generator: xoshiro256starstar.

    Every stochastic component takes an explicit [Rng.t] so experiments are
    reproducible; Monte-Carlo workers obtain independent streams via
    {!split}. *)

type t

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] seeds the state through a SplitMix64 expansion of
    [seed] (default seed [0x5EED_0F_0CAML]). *)

val copy : t -> t

val split : t -> t
(** [split rng] returns a new generator with a statistically independent
    stream, advancing [rng]. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> float -> float -> float
(** [float_range rng lo hi] is uniform in [lo, hi). *)

val int : t -> int -> int
(** [int rng n] is uniform in [0, n-1]. Requires [n > 0]. *)

val gaussian : t -> float
(** Standard normal via the Marsaglia polar method. *)

val gaussian_vector : t -> int -> float array
(** [gaussian_vector rng n] draws [n] iid standard normals. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
