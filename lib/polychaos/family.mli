(** Families of orthogonal polynomials from the Askey scheme.

    Each family is the set of *monic* polynomials orthogonal under a
    probability measure, described by its three-term recurrence
    [p_{k+1}(x) = (x - alpha_k) p_k(x) - beta_k p_{k-1}(x)].
    The measure is normalized ([beta_0 = 1]), so
    [norm_sq k = beta_1 * ... * beta_k = E(p_k^2)].

    The paper's table of pairings: Gaussian/lognormal -> Hermite,
    Gamma -> Laguerre, Beta -> Jacobi, Uniform -> Legendre. *)

type t = {
  name : string;
  alpha : int -> float;  (** recurrence diagonal coefficient *)
  beta : int -> float;  (** recurrence sub-diagonal; [beta 0 = 1] by convention *)
  sample : Prob.Rng.t -> float;  (** draw from the orthogonality measure *)
  pdf : float -> float;  (** density of the orthogonality measure *)
}

val eval : t -> int -> float -> float
(** [eval f k x] evaluates the degree-[k] monic polynomial at [x]. *)

val eval_all : t -> int -> float -> float array
(** [eval_all f k x] is [| p_0 x; ...; p_k x |] in one recurrence sweep. *)

val norm_sq : t -> int -> float
(** [norm_sq f k] = E[p_k(X)^2] under the family's measure. *)

val hermite : t
(** Monic probabilists' Hermite; measure N(0,1); [norm_sq k = k!]. *)

val legendre : t
(** Monic Legendre; measure Uniform(-1,1). *)

val laguerre : t
(** Monic Laguerre; measure Exponential(1). *)

val jacobi : a:float -> b:float -> t
(** Monic Jacobi with weight proportional to [(1-x)^a (1+x)^b] on (-1,1);
    the measure is a Beta(b+1, a+1) variable mapped onto (-1,1).
    Requires [a, b > -1]. *)
