(** Graded multi-indices for multivariate polynomial bases.

    A multi-index [(d_1, ..., d_n)] selects the product polynomial
    [prod_k p_{d_k}(xi_k)].  The truncated chaos basis of order [p] over
    [n] variables consists of all multi-indices with total degree <= p —
    there are [C(n + p, p)] of them, the paper's [N + 1]. *)

val count : dim:int -> max_degree:int -> int
(** [(dim + max_degree) choose max_degree]. *)

val generate : dim:int -> max_degree:int -> int array array
(** All multi-indices with total degree <= [max_degree], graded (by total
    degree), lexicographic within a grade.  Index 0 is the zero index
    (the constant polynomial). *)

val degree : int array -> int
(** Total degree (sum of components). *)

val rank : int array array -> int array -> int
(** Position of a multi-index in a generated list.
    Raises [Not_found] if absent. *)

val generate_box : degrees:int array -> int array array
(** Anisotropic truncation: all indices with [idx.(d) <= degrees.(d)] per
    dimension, graded by total degree then lexicographic — lets an
    analysis spend order where a parameter needs it (e.g. order 3 in the
    lognormal leakage variable, order 1 elsewhere). *)

val count_box : degrees:int array -> int
(** [prod (degrees.(d) + 1)]. *)
