(** Truncated multivariate polynomial-chaos basis.

    [psi_k(xi) = prod_d p_{m_k(d)}(xi_d)] where [m_k] is the k-th
    multi-index; the basis holds all total degrees up to [order].
    Orthogonality: [E(psi_j psi_k) = delta_jk * norm_sq k]. *)

type t

val create : Family.t array -> order:int -> t
(** [create families ~order] builds the total-degree basis over
    [Array.length families] variables; variable [d] uses [families.(d)]. *)

val isotropic : Family.t -> dim:int -> order:int -> t
(** Same family in every dimension. *)

val anisotropic : Family.t array -> degrees:int array -> t
(** Per-dimension degree caps (box truncation): dimension [d] carries
    polynomials up to degree [degrees.(d)].  Spend resolution only where a
    parameter needs it; size is [prod (degrees.(d) + 1)]. *)

val size : t -> int
(** Number of basis functions, the paper's [N + 1]. *)

val dim : t -> int

val order : t -> int

val families : t -> Family.t array

val index : t -> int -> int array
(** The k-th multi-index (not a copy; do not mutate). *)

val indices : t -> int array array

val rank_of_index : t -> int array -> int
(** Inverse of {!index}. Raises [Not_found]. *)

val eval : t -> int -> float array -> float
(** [eval b k xi] evaluates [psi_k] at the point [xi]. *)

val eval_all : t -> float array -> float array
(** All basis functions at once (shared recurrence sweeps). *)

val norm_sq : t -> int -> float
(** [E(psi_k^2)], the paper's expansion weights (e.g. 1,1,1,2,1,2 for the
    order-2 two-variable Hermite basis). *)

val sample_point : t -> Prob.Rng.t -> float array
(** Draw [xi] from the product orthogonality measure. *)
