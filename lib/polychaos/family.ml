type t = {
  name : string;
  alpha : int -> float;
  beta : int -> float;
  sample : Prob.Rng.t -> float;
  pdf : float -> float;
}

let eval_all f k x =
  if k < 0 then invalid_arg "Family.eval_all: negative order";
  let out = Array.make (k + 1) 1.0 in
  if k >= 1 then begin
    out.(1) <- x -. f.alpha 0;
    for i = 1 to k - 1 do
      out.(i + 1) <- ((x -. f.alpha i) *. out.(i)) -. (f.beta i *. out.(i - 1))
    done
  end;
  out

let eval f k x = (eval_all f k x).(k)

let norm_sq f k =
  if k < 0 then invalid_arg "Family.norm_sq: negative order";
  let acc = ref 1.0 in
  for i = 1 to k do
    acc := !acc *. f.beta i
  done;
  !acc

let hermite =
  {
    name = "hermite";
    alpha = (fun _ -> 0.0);
    beta = (fun k -> float_of_int k);
    sample = Prob.Rng.gaussian;
    pdf = Prob.Normal.pdf;
  }

let legendre =
  {
    name = "legendre";
    alpha = (fun _ -> 0.0);
    beta =
      (fun k ->
        if k = 0 then 1.0
        else begin
          let fk = float_of_int k in
          fk *. fk /. (((4.0 *. fk *. fk) -. 1.0))
        end);
    sample = (fun rng -> Prob.Rng.float_range rng (-1.0) 1.0);
    pdf = (fun x -> if x >= -1.0 && x <= 1.0 then 0.5 else 0.0);
  }

let laguerre =
  {
    name = "laguerre";
    alpha = (fun k -> float_of_int ((2 * k) + 1));
    beta = (fun k -> if k = 0 then 1.0 else float_of_int (k * k));
    sample = (fun rng -> Prob.Distributions.sample rng (Exponential { rate = 1.0 }));
    pdf = (fun x -> if x < 0.0 then 0.0 else exp (-.x));
  }

let jacobi ~a ~b =
  if a <= -1.0 || b <= -1.0 then invalid_arg "Family.jacobi: parameters must exceed -1";
  let alpha k =
    if k = 0 then (b -. a) /. (a +. b +. 2.0)
    else begin
      let s = (2.0 *. float_of_int k) +. a +. b in
      ((b *. b) -. (a *. a)) /. (s *. (s +. 2.0))
    end
  in
  let beta k =
    if k = 0 then 1.0
    else if k = 1 then
      4.0 *. (a +. 1.0) *. (b +. 1.0) /. (((a +. b +. 2.0) ** 2.0) *. (a +. b +. 3.0))
    else begin
      let fk = float_of_int k in
      let s = (2.0 *. fk) +. a +. b in
      4.0 *. fk *. (fk +. a) *. (fk +. b) *. (fk +. a +. b)
      /. (s *. s *. (s +. 1.0) *. (s -. 1.0))
    end
  in
  let beta_dist = Prob.Distributions.Beta { alpha = b +. 1.0; beta = a +. 1.0 } in
  {
    name = Printf.sprintf "jacobi(%g,%g)" a b;
    alpha;
    beta;
    sample = (fun rng -> (2.0 *. Prob.Distributions.sample rng beta_dist) -. 1.0);
    pdf =
      (fun x ->
        (* X = 2B - 1 with B ~ Beta(b+1, a+1): density transforms by 1/2. *)
        if x <= -1.0 || x >= 1.0 then 0.0
        else 0.5 *. Prob.Distributions.pdf beta_dist ((x +. 1.0) /. 2.0));
  }
