(** Gaussian quadrature rules generated from recurrence coefficients
    (Golub–Welsch), and tensor-product rules for multivariate integrals. *)

type rule = { nodes : float array; weights : float array }

val gauss : Family.t -> int -> rule
(** [gauss family n] is the n-point Gaussian rule for the family's measure:
    it integrates polynomials of degree <= 2n-1 exactly against the
    probability measure (weights sum to 1). *)

val integrate : rule -> (float -> float) -> float

val tensor : Family.t array -> int -> (float array -> float) -> float
(** [tensor families n f] integrates [f] over the product measure with an
    n-point rule per dimension. Cost is [n ^ dim]; intended for the small
    dimensions (2–5 random variables) of power-grid variation models. *)

val expectation_of_product : Family.t -> int list -> float
(** [expectation_of_product family degrees] = E[prod_k p_{d_k}(X)] computed
    with an exact-order Gaussian rule; used to build (and cross-check)
    triple-product tables. *)
