let variance_share x keep =
  let basis = x.Pce.basis in
  let total = Pce.variance x in
  if total <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for k = 1 to Basis.size basis - 1 do
      if keep (Basis.index basis k) then begin
        let a = x.Pce.coefs.(k) in
        acc := !acc +. (a *. a *. Basis.norm_sq basis k)
      end
    done;
    !acc /. total
  end

let check_dim x d =
  if d < 0 || d >= Basis.dim x.Pce.basis then invalid_arg "Sobol: dimension out of range"

let main_effect x d =
  check_dim x d;
  variance_share x (fun idx ->
      idx.(d) > 0 && Array.for_all (fun v -> v = 0) (Array.mapi (fun i v -> if i = d then 0 else v) idx))

let total_effect x d =
  check_dim x d;
  variance_share x (fun idx -> idx.(d) > 0)

let interaction_share x =
  variance_share x (fun idx ->
      let active = Array.fold_left (fun acc v -> if v > 0 then acc + 1 else acc) 0 idx in
      active >= 2)

let report ?names x =
  let dim = Basis.dim x.Pce.basis in
  let name d =
    match names with
    | Some ns when d < Array.length ns -> ns.(d)
    | _ -> Printf.sprintf "xi%d" d
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "variance %.4e (sigma %.4e)\n" (Pce.variance x) (Pce.std x));
  for d = 0 to dim - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %-10s main %5.1f%%   total %5.1f%%\n" (name d)
         (100.0 *. main_effect x d)
         (100.0 *. total_effect x d))
  done;
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %5.1f%%\n" "interactions" (100.0 *. interaction_share x));
  Buffer.contents buf
