(** Sobol' variance decomposition, read directly off a chaos expansion.

    Because the basis is orthogonal, the variance contribution of any group
    of input variables is the sum of squared (norm-weighted) coefficients
    of the basis functions involving exactly those variables — no extra
    simulation needed.  This answers "which process parameter dominates the
    voltage variability at this node?" for free once OPERA has run. *)

val main_effect : Pce.t -> int -> float
(** [main_effect x d]: fraction of Var(x) carried by terms in [xi_d] alone
    (first-order Sobol' index). 0 when the variance vanishes. *)

val total_effect : Pce.t -> int -> float
(** Fraction of Var(x) carried by all terms involving [xi_d] (total-effect
    Sobol' index; >= main effect). *)

val interaction_share : Pce.t -> float
(** Fraction of Var(x) in terms coupling two or more variables. *)

val report : ?names:string array -> Pce.t -> string
(** Multi-line human-readable summary; [names] labels the dimensions
    (defaults to xi0, xi1, ...). *)
