(** Triple-product tensors [E(psi_i psi_j psi_k)].

    These expectations are the structure constants of the Galerkin
    projection: the augmented system of the paper's Eq. (19)–(22) is
    [Gt(jN+...) = sum_i E(psi_i psi_j psi_k) G_i].  For a product basis the
    tensor factorizes into univariate tables, computed in closed form for
    Hermite and by exact Gaussian quadrature otherwise. *)

type t
(** Precomputed tables for a basis. *)

val create : Basis.t -> t

val hermite_univariate : int -> int -> int -> float
(** Closed-form [E(He_i He_j He_k)] for monic probabilists' Hermite:
    [i! j! k! / ((s-i)! (s-j)! (s-k)!)] when [i + j + k = 2 s] is even and
    the triangle inequality holds, else 0. *)

val value : t -> int -> int -> int -> float
(** [value t i j k] = [E(psi_i psi_j psi_k)] for basis ranks i, j, k. *)

val coupling_matrix : t -> int -> Linalg.Dense.t
(** [coupling_matrix t i] is the (N+1)x(N+1) symmetric matrix
    [T_i.(j).(k) = E(psi_i psi_j psi_k)].  [coupling_matrix t 0] is the
    diagonal of basis norms. *)

val basis : t -> Basis.t

val encode : t -> Util.Codec.encoder -> unit
(** Serialize the per-dimension univariate tables for the artifact
    store.  Floats cross the codec as IEEE-754 bit patterns, so a
    decoded tensor evaluates bitwise identically. *)

val decode : Basis.t -> Util.Codec.decoder -> t
(** [decode basis d] is the inverse of {!encode}, checked against
    [basis]: the stored dimension count and order must match, and every
    table row must have the right length.  Raises {!Util.Codec.Corrupt}
    on any mismatch — a cached tensor can never be silently applied to
    the wrong basis. *)
