type t = { basis : Basis.t; coefs : float array }

let create basis coefs =
  if Array.length coefs <> Basis.size basis then
    invalid_arg "Pce.create: coefficient length must equal basis size";
  { basis; coefs }

let constant basis v =
  let coefs = Array.make (Basis.size basis) 0.0 in
  coefs.(0) <- v;
  { basis; coefs }

let variable basis d =
  if d < 0 || d >= Basis.dim basis then invalid_arg "Pce.variable: dimension out of range";
  if Basis.order basis < 1 then invalid_arg "Pce.variable: basis order must be >= 1";
  let idx = Array.make (Basis.dim basis) 0 in
  idx.(d) <- 1;
  let k = Basis.rank_of_index basis idx in
  let coefs = Array.make (Basis.size basis) 0.0 in
  (* Monic p_1(x) = x - alpha_0, so x = p_1(x) + alpha_0 * p_0. *)
  let fam = (Basis.families basis).(d) in
  coefs.(k) <- 1.0;
  coefs.(0) <- fam.Family.alpha 0;
  { basis; coefs }

let mean x = x.coefs.(0)

let variance x =
  let acc = ref 0.0 in
  for k = 1 to Array.length x.coefs - 1 do
    acc := !acc +. (x.coefs.(k) *. x.coefs.(k) *. Basis.norm_sq x.basis k)
  done;
  !acc

let std x = sqrt (variance x)

let eval x xi =
  let values = Basis.eval_all x.basis xi in
  let acc = ref 0.0 in
  Array.iteri (fun k v -> acc := !acc +. (x.coefs.(k) *. v)) values;
  !acc

let sample x rng = eval x (Basis.sample_point x.basis rng)

let same_basis name a b =
  if a.basis != b.basis && Basis.indices a.basis <> Basis.indices b.basis then
    invalid_arg (Printf.sprintf "Pce.%s: operands use different bases" name)

let add a b =
  same_basis "add" a b;
  { a with coefs = Linalg.Vec.add a.coefs b.coefs }

let sub a b =
  same_basis "sub" a b;
  { a with coefs = Linalg.Vec.sub a.coefs b.coefs }

let scale alpha a = { a with coefs = Linalg.Vec.scaled alpha a.coefs }

let mul tp a b =
  same_basis "mul" a b;
  let n = Basis.size a.basis in
  let coefs = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if Util.Floats.nonzero a.coefs.(i) then
      for j = 0 to n - 1 do
        if Util.Floats.nonzero b.coefs.(j) then
          for k = 0 to n - 1 do
            let c = Triple_product.value tp i j k in
            if Util.Floats.nonzero c then coefs.(k) <- coefs.(k) +. (a.coefs.(i) *. b.coefs.(j) *. c)
          done
      done
  done;
  for k = 0 to n - 1 do
    coefs.(k) <- coefs.(k) /. Basis.norm_sq a.basis k
  done;
  { a with coefs }

let central_moment x m =
  if m < 1 || m > 4 then invalid_arg "Pce.central_moment: order must be 1..4";
  let mu = mean x in
  (* The integrand has polynomial degree m * order; an n-point Gauss rule is
     exact for degree 2n-1. *)
  let npts = ((m * Basis.order x.basis) / 2) + 1 in
  Quadrature.tensor (Basis.families x.basis) npts (fun xi ->
      let d = eval x xi -. mu in
      let rec pow acc k = if k = 0 then acc else pow (acc *. d) (k - 1) in
      pow 1.0 m)

let skewness x =
  let v = variance x in
  if v <= 0.0 then 0.0 else central_moment x 3 /. (v ** 1.5)

let kurtosis_excess x =
  let v = variance x in
  if v <= 0.0 then 0.0 else (central_moment x 4 /. (v *. v)) -. 3.0
