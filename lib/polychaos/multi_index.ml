let count ~dim ~max_degree =
  if dim < 1 then invalid_arg "Multi_index.count: dim must be positive";
  if max_degree < 0 then invalid_arg "Multi_index.count: negative degree";
  (* C(dim + max_degree, max_degree), exactly in integers. *)
  let acc = ref 1 in
  for k = 1 to max_degree do
    acc := !acc * (dim + k) / k
  done;
  !acc

let degree idx = Array.fold_left ( + ) 0 idx

(* All indices with total degree exactly [d], lexicographically descending
   in the first component (conventional graded-lex ordering). *)
let rec exact_degree dim d =
  if dim = 1 then [ [| d |] ]
  else
    List.concat_map
      (fun first ->
        List.map
          (fun rest -> Array.append [| first |] rest)
          (exact_degree (dim - 1) (d - first)))
      (List.init (d + 1) (fun i -> d - i))

let generate ~dim ~max_degree =
  if dim < 1 then invalid_arg "Multi_index.generate: dim must be positive";
  if max_degree < 0 then invalid_arg "Multi_index.generate: negative degree";
  List.init (max_degree + 1) (fun d -> exact_degree dim d)
  |> List.concat
  |> Array.of_list

let count_box ~degrees =
  if Array.length degrees = 0 then invalid_arg "Multi_index.count_box: empty degrees";
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Multi_index.count_box: negative degree";
      acc * (d + 1))
    1 degrees

let generate_box ~degrees =
  let dim = Array.length degrees in
  if dim = 0 then invalid_arg "Multi_index.generate_box: empty degrees";
  let total = count_box ~degrees in
  let indices = Array.make total [||] in
  let idx = Array.make dim 0 in
  for k = 0 to total - 1 do
    indices.(k) <- Array.copy idx;
    (* odometer increment *)
    let d = ref 0 in
    let carrying = ref true in
    while !carrying && !d < dim do
      if idx.(!d) < degrees.(!d) then begin
        idx.(!d) <- idx.(!d) + 1;
        carrying := false
      end
      else begin
        idx.(!d) <- 0;
        incr d
      end
    done
  done;
  (* graded ordering, ties broken lexicographically on the raw arrays *)
  Array.sort
    (fun a b ->
      match compare (degree a) (degree b) with 0 -> compare b a | c -> c)
    indices;
  indices

let rank indices idx =
  let n = Array.length indices in
  let rec go k = if k = n then raise Not_found else if indices.(k) = idx then k else go (k + 1) in
  go 0
