type t = {
  basis : Basis.t;
  per_dim : float array array array array;
      (* per_dim.(d).(i).(j).(k) = E[p_i p_j p_k] for dimension d's family *)
}

let hermite_univariate i j k =
  let total = i + j + k in
  if total mod 2 = 1 then 0.0
  else begin
    let s = total / 2 in
    if s < i || s < j || s < k then 0.0
    else begin
      let fact = Prob.Special_functions.factorial in
      fact i *. fact j *. fact k /. (fact (s - i) *. fact (s - j) *. fact (s - k))
    end
  end

let univariate_table family max_order =
  let m = max_order + 1 in
  let is_hermite = family.Family.name = "hermite" in
  let tbl = Array.init m (fun _ -> Array.make_matrix m m 0.0) in
  for i = 0 to max_order do
    for j = i to max_order do
      for k = j to max_order do
        let v =
          if is_hermite then hermite_univariate i j k
          else Quadrature.expectation_of_product family [ i; j; k ]
        in
        (* fill all six symmetric slots *)
        tbl.(i).(j).(k) <- v;
        tbl.(i).(k).(j) <- v;
        tbl.(j).(i).(k) <- v;
        tbl.(j).(k).(i) <- v;
        tbl.(k).(i).(j) <- v;
        tbl.(k).(j).(i) <- v
      done
    done
  done;
  tbl

let create basis =
  let order = Basis.order basis in
  let per_dim = Array.map (fun fam -> univariate_table fam order) (Basis.families basis) in
  { basis; per_dim }

let value t i j k =
  let ii = Basis.index t.basis i and jj = Basis.index t.basis j and kk = Basis.index t.basis k in
  let acc = ref 1.0 in
  (try
     Array.iteri
       (fun d di ->
         let v = t.per_dim.(d).(di).(jj.(d)).(kk.(d)) in
         if Util.Floats.is_zero v then begin
           acc := 0.0;
           raise Exit
         end;
         acc := !acc *. v)
       ii
   with Exit -> ());
  !acc

let coupling_matrix t i =
  let n = Basis.size t.basis in
  Linalg.Dense.init n n (fun j k -> value t i j k)

let basis t = t.basis

(* ---- artifact serialization ----------------------------------------
   The tensor factorizes into one (order+1)^3 univariate table per
   dimension; that is exactly what crosses the codec.  [decode] checks
   the stored shape against the basis it is asked to serve and raises
   [Util.Codec.Corrupt] on any mismatch, so a cached tensor can never be
   silently applied to the wrong basis. *)

let encode (t : t) (e : Util.Codec.encoder) =
  let m = Basis.order t.basis + 1 in
  Util.Codec.write_int e (Array.length t.per_dim);
  Util.Codec.write_int e m;
  Array.iter
    (fun tbl ->
      Array.iter (fun plane -> Array.iter (fun row -> Util.Codec.write_float_array e row) plane) tbl)
    t.per_dim

let decode (basis : Basis.t) (d : Util.Codec.decoder) =
  let fail fmt = Printf.ksprintf (fun s -> raise (Util.Codec.Corrupt s)) fmt in
  let dims = Util.Codec.read_int d in
  let m = Util.Codec.read_int d in
  if dims <> Basis.dim basis then
    fail "triple-product: stored for %d dimensions, basis has %d" dims (Basis.dim basis);
  if m <> Basis.order basis + 1 then
    fail "triple-product: stored order %d, basis order %d" (m - 1) (Basis.order basis);
  let per_dim =
    Array.init dims (fun _ ->
        Array.init m (fun _ ->
            Array.init m (fun _ ->
                let row = Util.Codec.read_float_array d in
                if Array.length row <> m then
                  fail "triple-product: table row length %d <> %d" (Array.length row) m;
                row)))
  in
  { basis; per_dim }
