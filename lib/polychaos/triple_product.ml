type t = {
  basis : Basis.t;
  per_dim : float array array array array;
      (* per_dim.(d).(i).(j).(k) = E[p_i p_j p_k] for dimension d's family *)
}

let hermite_univariate i j k =
  let total = i + j + k in
  if total mod 2 = 1 then 0.0
  else begin
    let s = total / 2 in
    if s < i || s < j || s < k then 0.0
    else begin
      let fact = Prob.Special_functions.factorial in
      fact i *. fact j *. fact k /. (fact (s - i) *. fact (s - j) *. fact (s - k))
    end
  end

let univariate_table family max_order =
  let m = max_order + 1 in
  let is_hermite = family.Family.name = "hermite" in
  let tbl = Array.init m (fun _ -> Array.make_matrix m m 0.0) in
  for i = 0 to max_order do
    for j = i to max_order do
      for k = j to max_order do
        let v =
          if is_hermite then hermite_univariate i j k
          else Quadrature.expectation_of_product family [ i; j; k ]
        in
        (* fill all six symmetric slots *)
        tbl.(i).(j).(k) <- v;
        tbl.(i).(k).(j) <- v;
        tbl.(j).(i).(k) <- v;
        tbl.(j).(k).(i) <- v;
        tbl.(k).(i).(j) <- v;
        tbl.(k).(j).(i) <- v
      done
    done
  done;
  tbl

let create basis =
  let order = Basis.order basis in
  let per_dim = Array.map (fun fam -> univariate_table fam order) (Basis.families basis) in
  { basis; per_dim }

let value t i j k =
  let ii = Basis.index t.basis i and jj = Basis.index t.basis j and kk = Basis.index t.basis k in
  let acc = ref 1.0 in
  (try
     Array.iteri
       (fun d di ->
         let v = t.per_dim.(d).(di).(jj.(d)).(kk.(d)) in
         if Util.Floats.is_zero v then begin
           acc := 0.0;
           raise Exit
         end;
         acc := !acc *. v)
       ii
   with Exit -> ());
  !acc

let coupling_matrix t i =
  let n = Basis.size t.basis in
  Linalg.Dense.init n n (fun j k -> value t i j k)

let basis t = t.basis
