(** Spectral projection of nonlinear functions onto a chaos basis.

    Used for the paper's Sec. 5.1 special case: lognormal leakage currents
    (exponential in the threshold-voltage variation) expanded "to any
    required order of accuracy" in the Hermite basis. *)

val project : Basis.t -> ?quad_points:int -> (float array -> float) -> Pce.t
(** [project b f] computes [coefs.(k) = E(f psi_k) / norm_sq k] by
    tensor-product Gaussian quadrature ([quad_points] per dimension,
    default [2 * order + 2]). *)

val lognormal_univariate : Basis.t -> dim:int -> mu:float -> sigma:float -> Pce.t
(** Closed-form Hermite coefficients of [exp (mu + sigma * xi_d)]:
    [coefs_k = exp (mu + sigma^2 / 2) * sigma^k / k!] on the pure powers of
    dimension [d] (requires that dimension to be Hermite). *)

val project_sparse : Basis.t -> level:int -> (float array -> float) -> Pce.t
(** Like {!project} but on a Smolyak sparse grid — the only affordable
    route beyond ~6 random variables (spatial KL models).  [level] must be
    at least [order + 1] for an exact projection of polynomials inside the
    basis span. *)
