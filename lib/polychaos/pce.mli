(** Scalar polynomial-chaos expansions.

    A PCE is [X = sum_k coefs.(k) * psi_k(xi)]; mean, variance and higher
    moments follow directly from the coefficients — the paper's Eq. (23). *)

type t = { basis : Basis.t; coefs : float array }

val create : Basis.t -> float array -> t
(** Coefficient vector must have length [Basis.size]. *)

val constant : Basis.t -> float -> t

val variable : Basis.t -> int -> t
(** [variable b d]: the PCE of the raw random variable [xi_d] itself
    (degree-1 coefficient on dimension d, adjusted for the family's
    first-order recurrence shift). *)

val mean : t -> float

val variance : t -> float
(** [sum_{k>=1} coefs.(k)^2 * norm_sq k]. *)

val std : t -> float

val eval : t -> float array -> float

val sample : t -> Prob.Rng.t -> float
(** Evaluate at a point drawn from the product measure — the cheap
    "sampling the explicit response" that replaces re-simulation. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : Triple_product.t -> t -> t -> t
(** Galerkin product truncated back onto the basis:
    [(xy)_k = sum_ij x_i y_j E(psi_i psi_j psi_k) / norm_sq k]. *)

val central_moment : t -> int -> float
(** Central moments up to order 4 by full tensor quadrature over the
    basis dimensions (exact for the polynomial integrand). *)

val skewness : t -> float

val kurtosis_excess : t -> float
