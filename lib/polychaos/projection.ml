let project basis ?quad_points f =
  let npts = match quad_points with Some n -> n | None -> (2 * Basis.order basis) + 2 in
  let n = Basis.size basis in
  let coefs = Array.make n 0.0 in
  (* One tensor sweep accumulating every coefficient at once. *)
  let families = Basis.families basis in
  let dim = Basis.dim basis in
  let rules = Array.map (fun fam -> Quadrature.gauss fam npts) families in
  let point = Array.make dim 0.0 in
  let rec go d weight =
    if d = dim then begin
      let fv = f point in
      let values = Basis.eval_all basis point in
      for k = 0 to n - 1 do
        coefs.(k) <- coefs.(k) +. (weight *. fv *. values.(k))
      done
    end
    else begin
      let r = rules.(d) in
      for i = 0 to npts - 1 do
        point.(d) <- r.Quadrature.nodes.(i);
        go (d + 1) (weight *. r.Quadrature.weights.(i))
      done
    end
  in
  go 0 1.0;
  for k = 0 to n - 1 do
    coefs.(k) <- coefs.(k) /. Basis.norm_sq basis k
  done;
  Pce.create basis coefs

let lognormal_univariate basis ~dim:d ~mu ~sigma =
  if d < 0 || d >= Basis.dim basis then invalid_arg "Projection.lognormal_univariate: bad dim";
  let fam = (Basis.families basis).(d) in
  if fam.Family.name <> "hermite" then
    invalid_arg "Projection.lognormal_univariate: dimension is not Hermite";
  let n = Basis.size basis in
  let coefs = Array.make n 0.0 in
  let scale = exp (mu +. (sigma *. sigma /. 2.0)) in
  for k = 0 to n - 1 do
    let idx = Basis.index basis k in
    (* Only pure powers of dimension d contribute. *)
    let pure = ref true in
    Array.iteri (fun d' deg -> if d' <> d && deg <> 0 then pure := false) idx;
    if !pure then begin
      let deg = idx.(d) in
      coefs.(k) <- scale *. (sigma ** float_of_int deg) /. Prob.Special_functions.factorial deg
    end
  done;
  Pce.create basis coefs

let project_sparse basis ~level f =
  let grid = Smolyak.create (Basis.families basis) ~level in
  let n = Basis.size basis in
  let coefs = Array.make n 0.0 in
  Smolyak.iter grid (fun point weight ->
      let fv = f point in
      let values = Basis.eval_all basis point in
      for k = 0 to n - 1 do
        coefs.(k) <- coefs.(k) +. (weight *. fv *. values.(k))
      done);
  for k = 0 to n - 1 do
    coefs.(k) <- coefs.(k) /. Basis.norm_sq basis k
  done;
  Pce.create basis coefs
