type t = { points : float array array; weights : float array }

let binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let create families ~level =
  let dim = Array.length families in
  if dim = 0 then invalid_arg "Smolyak.create: need at least one dimension";
  if level < 1 then invalid_arg "Smolyak.create: level must be >= 1";
  (* Pre-build the 1-D rules: Q_l has l points. *)
  let rules =
    Array.map (fun fam -> Array.init level (fun l -> Quadrature.gauss fam (l + 1))) families
  in
  let q = level + dim - 1 in
  let points = ref [] and weights = ref [] in
  (* Enumerate level vectors l (each >= 1) with q - dim + 1 <= |l| <= q. *)
  let l = Array.make dim 1 in
  let rec enumerate d remaining_min remaining_max =
    if d = dim then begin
      let total = Array.fold_left ( + ) 0 l in
      let coeff =
        (if (q - total) mod 2 = 0 then 1.0 else -1.0) *. binomial (dim - 1) (q - total)
      in
      if Util.Floats.nonzero coeff then begin
        (* Tensor product of the selected 1-D rules. *)
        let point = Array.make dim 0.0 in
        let rec tensor di w =
          if di = dim then begin
            points := Array.copy point :: !points;
            weights := (coeff *. w) :: !weights
          end
          else begin
            let rule = rules.(di).(l.(di) - 1) in
            Array.iteri
              (fun i node ->
                point.(di) <- node;
                tensor (di + 1) (w *. rule.Quadrature.weights.(i)))
              rule.Quadrature.nodes
          end
        in
        tensor 0 1.0
      end
    end
    else
      (* remaining_min/max bound the sum still to distribute *)
      for li = 1 to Int.min level remaining_max do
        if remaining_min - li <= level * (dim - d - 1) then begin
          l.(d) <- li;
          enumerate (d + 1) (Int.max 0 (remaining_min - li)) (remaining_max - li)
        end
      done
  in
  enumerate 0 (q - dim + 1) q;
  { points = Array.of_list !points; weights = Array.of_list !weights }

let node_count t = Array.length t.points

let integrate t f =
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (t.weights.(i) *. f p)) t.points;
  !acc

let tensor_node_count ~dim ~level =
  int_of_float (float_of_int level ** float_of_int dim)

let iter t f = Array.iteri (fun i p -> f p t.weights.(i)) t.points
