type t = {
  families : Family.t array;
  order : int;
  indices : int array array;
  norms : float array;
  table : (int array, int) Hashtbl.t;
}

let of_indices families ~order indices =
  let norms =
    Array.map
      (fun idx ->
        let acc = ref 1.0 in
        Array.iteri (fun d deg -> acc := !acc *. Family.norm_sq families.(d) deg) idx;
        !acc)
      indices
  in
  let table = Hashtbl.create (Array.length indices) in
  Array.iteri (fun k idx -> Hashtbl.replace table idx k) indices;
  { families; order; indices; norms; table }

let create families ~order =
  let dim = Array.length families in
  if dim = 0 then invalid_arg "Basis.create: need at least one variable";
  if order < 0 then invalid_arg "Basis.create: negative order";
  of_indices families ~order (Multi_index.generate ~dim ~max_degree:order)

let isotropic family ~dim ~order = create (Array.make dim family) ~order

let anisotropic families ~degrees =
  let dim = Array.length families in
  if dim = 0 then invalid_arg "Basis.anisotropic: need at least one variable";
  if Array.length degrees <> dim then invalid_arg "Basis.anisotropic: degrees length mismatch";
  let order = Array.fold_left Int.max 0 degrees in
  of_indices families ~order (Multi_index.generate_box ~degrees)

let size b = Array.length b.indices

let dim b = Array.length b.families

let order b = b.order

let families b = b.families

let index b k = b.indices.(k)

let indices b = b.indices

let rank_of_index b idx =
  match Hashtbl.find_opt b.table idx with Some k -> k | None -> raise Not_found

let eval b k xi =
  if Array.length xi <> dim b then invalid_arg "Basis.eval: point dimension mismatch";
  let idx = b.indices.(k) in
  let acc = ref 1.0 in
  Array.iteri (fun d deg -> acc := !acc *. Family.eval b.families.(d) deg xi.(d)) idx;
  !acc

let eval_all b xi =
  if Array.length xi <> dim b then invalid_arg "Basis.eval_all: point dimension mismatch";
  (* One recurrence sweep per dimension, then products. *)
  let per_dim =
    Array.mapi (fun d fam -> Family.eval_all fam b.order xi.(d)) b.families
  in
  Array.map
    (fun idx ->
      let acc = ref 1.0 in
      Array.iteri (fun d deg -> acc := !acc *. per_dim.(d).(deg)) idx;
      !acc)
    b.indices

let norm_sq b k = b.norms.(k)

let sample_point b rng = Array.map (fun fam -> fam.Family.sample rng) b.families
