(** Smolyak sparse-grid quadrature.

    Full tensor quadrature costs [points ^ dim] — fine for the paper's 2–3
    variables, hopeless for the 10–20 dimensions of spatial KL models.
    The Smolyak combination formula reaches polynomial exactness
    comparable to the tensor rule with far fewer nodes:

    [Q_q = sum_{q-d+1 <= |l| <= q} (-1)^(q-|l|) C(d-1, q-|l|) (Q_{l_1} (x) ... (x) Q_{l_d})]

    using one-dimensional Gauss rules of increasing level. *)

type t

val create : Family.t array -> level:int -> t
(** [create families ~level] builds the sparse rule of the given level
    (level 1 = single point; level L is exact for total-degree
    [2L - 1] polynomials with the linear-growth rules used here). *)

val node_count : t -> int

val integrate : t -> (float array -> float) -> float
(** Weighted sum over the sparse grid (weights may be negative). *)

val tensor_node_count : dim:int -> level:int -> int
(** Size of the full tensor rule with the same 1-D accuracy, for
    comparison ([level ^ dim]). *)

val iter : t -> (float array -> float -> unit) -> unit
(** Iterate over (node, weight) pairs — for projecting many functionals in
    one sweep. *)
