type rule = { nodes : float array; weights : float array }

let gauss family n =
  if n <= 0 then invalid_arg "Quadrature.gauss: need at least one node";
  let diag = Array.init n family.Family.alpha in
  let off = Array.init (Int.max 0 (n - 1)) (fun k -> sqrt (family.Family.beta (k + 1))) in
  let values, vectors = Linalg.Eig.tridiagonal ~diag ~off in
  (* beta_0 = 1 (probability measure), so weight_i = (first eigvec comp)^2. *)
  let weights =
    Array.init n (fun i ->
        let v = Linalg.Dense.get vectors 0 i in
        v *. v)
  in
  { nodes = values; weights }

let integrate rule f =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (rule.weights.(i) *. f x)) rule.nodes;
  !acc

let tensor families n f =
  let dim = Array.length families in
  if dim = 0 then invalid_arg "Quadrature.tensor: no dimensions";
  let rules = Array.map (fun fam -> gauss fam n) families in
  let point = Array.make dim 0.0 in
  let rec go d weight acc =
    if d = dim then acc +. (weight *. f point)
    else begin
      let r = rules.(d) in
      let acc = ref acc in
      for i = 0 to n - 1 do
        point.(d) <- r.nodes.(i);
        acc := go (d + 1) (weight *. r.weights.(i)) !acc
      done;
      !acc
    end
  in
  go 0 1.0 0.0

let expectation_of_product family degrees =
  let total = List.fold_left ( + ) 0 degrees in
  let n = (total / 2) + 1 in
  let rule = gauss family n in
  integrate rule (fun x ->
      List.fold_left (fun acc d -> acc *. Family.eval family d x) 1.0 degrees)
