(* Variation-aware IR-drop sign-off.

   The paper's headline warning is that the +-3sigma spread of the voltage
   drop is ~35% of the nominal drop: a grid that passes a nominal-only
   IR-drop check can fail once variations are considered.  This example
   ranks nodes by their mu + 3 sigma drop and shows how the risky set
   differs from the nominal ranking.

   Run with:  dune exec examples/irdrop_variation.exe [-- <nodes>] *)

let () =
  let target = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2500 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  Printf.printf "grid: %s\n%!" (Powergrid.Grid_spec.describe spec);
  let circuit = Powergrid.Grid_gen.generate spec in
  let vm = Opera.Varmodel.paper_default in
  let model = Opera.Stochastic_model.build ~order:2 vm ~vdd circuit in
  let h = 0.125e-9 and steps = 16 in
  let options =
    { Opera.Galerkin.default_options with
      Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 } }
  in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h ~steps in
  let n = model.Opera.Stochastic_model.n in

  (* Worst-case-over-time drop per node, nominal (mu) and mu + 3 sigma. *)
  let nominal_drop = Array.make n 0.0 in
  let guarded_drop = Array.make n 0.0 in
  for step = 1 to steps do
    for node = 0 to n - 1 do
      let mu = Opera.Response.mean_at response ~step ~node in
      let sigma = Opera.Response.std_at response ~step ~node in
      nominal_drop.(node) <- Float.max nominal_drop.(node) (vdd -. mu);
      guarded_drop.(node) <- Float.max guarded_drop.(node) (vdd -. mu +. (3.0 *. sigma))
    done
  done;

  let ranked drops =
    let idx = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare drops.(b) drops.(a)) idx;
    idx
  in
  let by_nominal = ranked nominal_drop and by_guarded = ranked guarded_drop in

  Printf.printf "\n%-6s %-28s %-28s\n" "rank" "nominal-only worst nodes" "variation-aware (mu+3sigma)";
  for r = 0 to 9 do
    let a = by_nominal.(r) and b = by_guarded.(r) in
    Printf.printf "%-6d node %-6d %6.2f%% VDD     node %-6d %6.2f%% VDD\n" (r + 1) a
      (100.0 *. nominal_drop.(a) /. vdd)
      b
      (100.0 *. guarded_drop.(b) /. vdd)
  done;

  (* How many nodes breach a drop budget only when variations are added? *)
  let budget = 0.9 *. Array.fold_left Float.max 0.0 nominal_drop in
  let nominal_fail = Array.fold_left (fun acc d -> if d > budget then acc + 1 else acc) 0 nominal_drop in
  let guarded_fail = Array.fold_left (fun acc d -> if d > budget then acc + 1 else acc) 0 guarded_drop in
  Printf.printf
    "\nwith a drop budget of %.2f%% VDD: %d nodes fail nominally, %d fail at mu+3sigma (%+d)\n"
    (100.0 *. budget /. vdd) nominal_fail guarded_fail (guarded_fail - nominal_fail);

  (* Average spread, the paper's ~35% number. *)
  let ratio_sum = ref 0.0 and ratio_count = ref 0 in
  for node = 0 to n - 1 do
    if nominal_drop.(node) > 0.005 *. vdd then begin
      ratio_sum :=
        !ratio_sum +. ((guarded_drop.(node) -. nominal_drop.(node)) /. nominal_drop.(node));
      incr ratio_count
    end
  done;
  Printf.printf "average +-3sigma spread over meaningful drops: +-%.0f%% of the nominal drop\n"
    (100.0 *. !ratio_sum /. float_of_int !ratio_count)
