(* Netlist round-trip: export a generated grid as a SPICE-subset netlist,
   read it back, and run the stochastic analysis on the parsed circuit —
   the on-ramp for grids coming from external tools.

   Run with:  dune exec examples/netlist_flow.exe *)

let () =
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 600 in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let generated = Powergrid.Grid_gen.generate spec in
  let path = Filename.temp_file "opera_grid" ".sp" in
  Powergrid.Netlist.write_file path ~title:"netlist_flow example grid" generated;
  Printf.printf "wrote %s (%s)\n" path (Powergrid.Circuit.stats generated);

  (* A downstream consumer only sees the netlist. *)
  let parsed = Powergrid.Netlist.parse_file path in
  let circuit = parsed.Powergrid.Netlist.circuit in
  Printf.printf "parsed back: %s\n\n" (Powergrid.Circuit.stats circuit);

  (* Nominal DC IR-drop report straight from the netlist... *)
  let mna = Powergrid.Mna.assemble circuit in
  let v_dc = Powergrid.Dc.solve_at mna 0.4e-9 in
  let drop, node = Powergrid.Metrics.max_drop ~vdd v_dc in
  Printf.printf "nominal DC at t = 0.4 ns: worst drop %.2f mV (%.2f%% VDD) at node %d\n"
    (1e3 *. drop)
    (Powergrid.Metrics.drop_percent ~vdd drop)
    node;

  (* ...and the same grid under process variations. *)
  let model = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| node |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h:0.125e-9 ~steps:12 in
  let best_step = ref 1 and best = ref 0.0 in
  for step = 1 to 12 do
    let d = vdd -. Opera.Response.mean_at response ~step ~node in
    if d > !best then begin
      best := d;
      best_step := step
    end
  done;
  let sigma = Opera.Response.std_at response ~step:!best_step ~node in
  Printf.printf "stochastic:   worst mean drop %.2f mV +- %.2f mV (3 sigma) at the same node\n"
    (1e3 *. !best) (3e3 *. sigma);

  (* The full-MNA path also accepts netlists with ideal pads. *)
  let ideal = "V1 n0 0 1.2\nR1 n0 n1 0.5\nI1 n1 0 0.01\n.end\n" in
  let sys = Powergrid.Mna.Full.assemble (Powergrid.Netlist.parse_string ideal).Powergrid.Netlist.circuit in
  let v = Powergrid.Dc.solve_full sys in
  Printf.printf "\nideal-pad netlist through full MNA: v(n1) = %.4f V (expected 1.1950)\n" v.(1);
  Sys.remove path
