(* Figures 1 & 2 of the paper, interactively: the voltage-drop distribution
   at a chosen node, Monte Carlo vs the sampled OPERA expansion.

   Run with:  dune exec examples/distribution_plot.exe [-- <nodes> <mc-samples>] *)

let () =
  let target = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2000 in
  let mc_samples = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 400 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let probe = Powergrid.Grid_gen.center_node spec in
  let config =
    { Opera.Driver.default_config with
      Opera.Driver.mc_samples; steps = 16; probes = [| probe |] }
  in
  Printf.printf "running OPERA and %d-sample Monte Carlo on %s...\n%!" mc_samples
    (Powergrid.Grid_spec.describe spec);
  let outcome = Opera.Driver.run_grid ~label:"dist" config spec Opera.Varmodel.paper_default in
  let response = outcome.Opera.Driver.response in
  let mc = outcome.Opera.Driver.mc in

  (* Step with the deepest mean drop at the probe. *)
  let step =
    let best = ref 1 and deepest = ref infinity in
    for s = 1 to response.Opera.Response.steps do
      let v = Opera.Response.mean_at response ~step:s ~node:probe in
      if v < !deepest then begin
        deepest := v;
        best := s
      end
    done;
    !best
  in
  let drop_pct v = 100.0 *. (vdd -. v) /. vdd in
  let mc_drops = Array.map drop_pct mc.Opera.Monte_carlo.probe_values.(0).(step) in
  let rng = Prob.Rng.create ~seed:99L () in
  let opera_drops =
    Array.init (8 * mc_samples) (fun _ ->
        drop_pct (Opera.Response.sample_voltage response ~node:probe ~step rng))
  in
  let lo = Float.min (Linalg.Vec.min mc_drops) (Linalg.Vec.min opera_drops) in
  let hi = Float.max (Linalg.Vec.max mc_drops) (Linalg.Vec.max opera_drops) +. 1e-9 in
  let build xs =
    let h = Prob.Histogram.create ~lo ~hi ~bins:14 in
    Prob.Histogram.add_all h xs;
    h
  in
  Printf.printf "\nvoltage drop at node %d, t = %.3g ns, as %% of VDD:\n\n" probe
    (float_of_int step *. 0.125);
  print_string
    (Prob.Histogram.render_pair ~a:(build mc_drops) ~b:(build opera_drops) ~a_label:"MC"
       ~b_label:"OPERA" ());
  Printf.printf "\nKS p-value (same distribution?): %.4f\n"
    (Prob.Ks.p_value mc_drops opera_drops);
  Printf.printf "OPERA sampling is essentially free: each realization is one\n";
  Printf.printf "polynomial evaluation instead of one transient simulation.\n"
