(* Sec. 5.1 of the paper: leakage-current variation only.

   Threshold-voltage variation per chip region makes leakage lognormal;
   because only the right-hand side is stochastic, the Galerkin system
   decouples into independent solves sharing ONE factorization — and the
   explicit expansion yields exact moments (not just bounds) plus a full
   density via the Gram-Charlier series.

   Run with:  dune exec examples/leakage_special_case.exe *)

let () =
  let spec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 1500) with
      Powergrid.Grid_spec.regions_x = 2; regions_y = 2 }
  in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  Printf.printf "grid: %s, 4 threshold-voltage regions\n" (Powergrid.Grid_spec.describe spec);

  (* Every bottom-layer node leaks; the lognormal shape parameter lambda
     encodes how strongly leakage responds to the regional Vth shift. *)
  let rows = spec.Powergrid.Grid_spec.rows and cols = spec.Powergrid.Grid_spec.cols in
  let leaks =
    Array.init (rows * cols) (fun node ->
        (node, Powergrid.Grid_gen.region_of_node spec node, 8e-6))
  in
  let lambda = 0.6 in
  let sc = Opera.Special_case.make ~order:4 ~regions:4 ~lambda ~leaks ~vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  let response, seconds = Opera.Special_case.solve sc ~h:0.25e-9 ~steps:12 ~probes:[| probe |] in
  let size = Polychaos.Basis.size sc.Opera.Special_case.basis in
  Printf.printf "order-4 expansion over 4 regions: N+1 = %d decoupled transients, %.2f s total\n\n"
    size seconds;

  (* The probe's voltage as an explicit random variable. *)
  let pce = Opera.Response.pce_at response ~node:probe ~step:12 in
  let mean = Polychaos.Pce.mean pce in
  let sigma = Polychaos.Pce.std pce in
  let skew = Polychaos.Pce.skewness pce in
  let kurt = Polychaos.Pce.kurtosis_excess pce in
  Printf.printf "probe node %d at t = 3 ns:\n" probe;
  Printf.printf "  mean %.6f V   sigma %.3e V   skewness %+.3f   excess kurtosis %+.3f\n" mean
    sigma skew kurt;
  Printf.printf "  (negative skew: the lognormal leakage tail pulls the voltage down)\n\n";

  (* Density reconstruction from the first four moments (paper Sec. 5). *)
  let moments =
    { Prob.Gram_charlier.mean; variance = sigma *. sigma; skewness = skew;
      kurtosis_excess = kurt }
  in
  (* Compare against a histogram of direct samples of the expansion. *)
  let rng = Prob.Rng.create () in
  let samples = Array.init 20000 (fun _ -> Polychaos.Pce.sample pce rng) in
  let lo = Linalg.Vec.min samples and hi = Linalg.Vec.max samples +. 1e-12 in
  let hist = Prob.Histogram.create ~lo ~hi ~bins:13 in
  Prob.Histogram.add_all hist samples;
  let pct = Prob.Histogram.percentages hist in
  Printf.printf "%12s  %9s  %9s  %9s\n" "voltage (V)" "sampled%" "gram-ch%" "edgeworth%";
  let bin_width = (hi -. lo) /. 13.0 in
  Array.iteri
    (fun i p ->
      let x = Prob.Histogram.bin_center hist i in
      Printf.printf "%12.6f  %8.2f%%  %8.2f%%  %8.2f%%\n" x p
        (100.0 *. bin_width *. Prob.Gram_charlier.gram_charlier_pdf moments x)
        (100.0 *. bin_width *. Prob.Gram_charlier.edgeworth_pdf moments x))
    pct;

  (* Exact-moment claim: compare the mean against the analytic value
     E[exp(lambda xi)] = exp(lambda^2 / 2) pushed through the linear grid. *)
  let mc = Opera.Special_case.monte_carlo sc ~samples:2000 ~seed:1L ~h:0.25e-9 ~steps:12
      ~probes:[| probe |]
  in
  Printf.printf "\ncross-check vs 2000-sample MC:  mean %.6f V (MC %.6f)   sigma %.3e (MC %.3e)\n"
    mean
    (Opera.Monte_carlo.mean_at mc ~step:12 ~node:probe)
    sigma
    (Opera.Monte_carlo.std_at mc ~step:12 ~node:probe)
