(* Intra-die (spatially correlated) variation through Karhunen-Loeve
   modes — the extension of the paper's inter-die analysis to spatial
   stochastic processes.

   Run with:  dune exec examples/spatial_variation.exe *)

let () =
  let spec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 2000) with
      Powergrid.Grid_spec.regions_x = 4; regions_y = 4 }
  in
  let circuit = Powergrid.Grid_gen.generate spec in
  Printf.printf "grid: %s, 16 spatial regions\n\n" (Powergrid.Grid_spec.describe spec);

  (* A Gaussian random field over the die: sigma matching the paper's
     25%/3 conductance variation, correlation length 0.5 die widths. *)
  let centers = Opera.Spatial.region_centers spec in
  let kl =
    Opera.Spatial.karhunen_loeve ~sigma:(0.25 /. 3.0) ~corr_length:0.5 ~centers ~energy:0.95
  in
  Printf.printf "Karhunen-Loeve: %d modes capture %.1f%% of the field variance\n"
    (Opera.Spatial.modes kl)
    (100.0 *. kl.Opera.Spatial.captured);

  (* One realization of the field, as relative conductance shifts. *)
  let rng = Prob.Rng.create () in
  let field = Opera.Spatial.sample_field kl rng in
  Printf.printf "one die's conductance field (%% shift per region):\n";
  for y = 0 to 3 do
    for x = 0 to 3 do
      Printf.printf " %+6.2f" (100.0 *. field.((y * 4) + x))
    done;
    print_newline ()
  done;

  (* Chaos expansion over the KL modes + the global xiL. *)
  let model =
    Opera.Spatial.build_model ~order:2 kl ~base:Opera.Varmodel.paper_default ~spec circuit
  in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options =
    { Opera.Galerkin.default_options with
      Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 };
      probes = [| probe |] }
  in
  let response, stats = Opera.Galerkin.solve_transient ~options model ~h:0.125e-9 ~steps:16 in
  Printf.printf "\nchaos basis: %d dimensions, %d functions; solved in %.2f s\n"
    (Polychaos.Basis.dim model.Opera.Stochastic_model.basis)
    (Polychaos.Basis.size model.Opera.Stochastic_model.basis)
    (stats.Opera.Galerkin.factor_seconds +. stats.Opera.Galerkin.step_seconds);

  (* Which spatial mode matters at the probe? *)
  let best_step = ref 1 in
  for s = 2 to 16 do
    if
      Opera.Response.variance_at response ~step:s ~node:probe
      > Opera.Response.variance_at response ~step:!best_step ~node:probe
    then best_step := s
  done;
  let pce = Opera.Response.pce_at response ~node:probe ~step:!best_step in
  let names =
    Array.init
      (Polychaos.Basis.dim model.Opera.Stochastic_model.basis)
      (fun d ->
        if d = Opera.Spatial.modes kl then "xiL" else Printf.sprintf "mode%d" d)
  in
  Printf.printf "\nvariance decomposition at node %d (t = %.3g ns):\n%s" probe
    (float_of_int !best_step *. 0.125)
    (Polychaos.Sobol.report ~names pce);
  Printf.printf
    "\n(the global xiL and the long-wavelength mode carry the variance: fine\n\
    \ spatial detail of the conductance field averages out through the grid,\n\
    \ which is why the paper's inter-die treatment is such a good first-order\n\
    \ model)\n"
