(* Statistical IR-drop sign-off: turn the explicit stochastic response
   into yield numbers against a drop budget.

   Run with:  dune exec examples/yield_signoff.exe [-- <nodes> <budget-pct>] *)

let () =
  let target = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2000 in
  let budget_pct = if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 5.5 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let budget = budget_pct /. 100.0 *. vdd in
  Printf.printf "grid: %s\nbudget: %.1f%% of VDD (%.1f mV)\n\n"
    (Powergrid.Grid_spec.describe spec) budget_pct (1e3 *. budget);

  let circuit = Powergrid.Grid_gen.generate spec in
  let vm = Opera.Varmodel.paper_default in
  let model = Opera.Stochastic_model.build ~order:2 vm ~vdd circuit in
  let h = 0.125e-9 and steps = 16 in

  (* First pass: find the riskiest nodes, then re-solve with them probed so
     their full expansions are available for exact sampling. *)
  let options =
    { Opera.Galerkin.default_options with
      Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 } }
  in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h ~steps in
  let n = model.Opera.Stochastic_model.n in
  let risk = Array.make n 0.0 in
  for step = 1 to steps do
    for node = 0 to n - 1 do
      risk.(node) <-
        Float.max risk.(node)
          (Opera.Yield.failure_probability_gaussian response ~node ~step ~budget)
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare risk.(b) risk.(a)) order;
  Printf.printf "riskiest nodes (Gaussian tail, worst over time):\n";
  for r = 0 to 7 do
    let v = order.(r) in
    Printf.printf "  node %-6d P(drop > budget) = %.3e\n" v risk.(v)
  done;

  (* Union bound over the whole grid, per step. *)
  let worst_p = ref 0.0 and worst_step = ref 1 in
  for step = 1 to steps do
    let p, _ = Opera.Yield.grid_failure_probability_gaussian response ~step ~budget in
    if p > !worst_p then begin
      worst_p := p;
      worst_step := step
    end
  done;
  Printf.printf "\nunion bound over all %d nodes: P(any violation) <= %.3e (worst at t = %.3g ns)\n"
    n !worst_p
    (float_of_int !worst_step *. h *. 1e9);

  (* Exact joint sampling over the risky set: correlations across nodes and
     time tighten the union bound. *)
  let probes = Array.sub order 0 12 in
  let options = { options with Opera.Galerkin.probes } in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h ~steps in
  let rng = Prob.Rng.create () in
  let y = Opera.Yield.sampled_probe_yield response ~budget ~samples:20_000 rng in
  Printf.printf
    "sampled joint yield over the 12 riskiest nodes (20k dies, exact correlations): %.4f\n" y;
  Printf.printf "  -> P(violation among them) = %.3e\n" (1.0 -. y);

  (* Sensitivity: what margin buys five nines? *)
  let node = probes.(0) in
  let q = Opera.Yield.worst_case_drop response ~node ~step:!worst_step ~quantile:0.99999 in
  Printf.printf
    "\nworst node %d needs a budget of %.2f%% VDD for a 99.999%% per-node pass rate\n" node
    (100.0 *. q /. vdd)
