(* Excitation-corner sweep through the batch scenario engine.

   A signoff flow rarely solves one operating point: it sweeps corners —
   drain-current activity for the full stochastic grid, leakage level
   and lognormal shape for the Sec. 5.1 special case.  None of those
   knobs touch the deterministic operator, so the scenario engine
   factors each operator once and re-solves cheaply per corner; with a
   cache directory a second sweep (or a widened one) skips even that
   one factorization.

   The example builds the corner batch programmatically, writes the
   equivalent jobs.json (the file `opera batch` would take), runs the
   batch twice against a temporary artifact store, and reports the
   corner table plus the factor-once / solve-many accounting.

   Run with:  dune exec examples/batch_sweep.exe [-- <nodes>] *)

let nodes = ref 400

let steps = 8

let drain_corners = [| 0.6; 0.8; 1.0; 1.2; 1.4 |]

let leak_corners = [| (0.5, 0.3); (1.0, 0.5); (2.0, 0.7) |] (* leak_scale, lambda *)

let transient_job drain_scale =
  {
    Scenario.Job.name = Printf.sprintf "drain-%.1fx" drain_scale;
    source = Scenario.Job.Generated { nodes = !nodes };
    analysis = Scenario.Job.Transient;
    order = 2;
    h = 125e-12;
    steps;
    solver = Opera.Galerkin.Direct;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale;
    leak_scale = 1.0;
    probe = None;
  }

let special_job (leak_scale, lambda) =
  {
    (transient_job 1.0) with
    Scenario.Job.name = Printf.sprintf "leak-%.1fx-l%.1f" leak_scale lambda;
    analysis = Scenario.Job.Special { regions = 4; lambda };
    leak_scale;
  }

(* The same batch as a jobs.json for `opera batch` — field names match
   Scenario.Job.of_json. *)
let jobs_json jobs =
  let field name v = Printf.sprintf "\"%s\": %s" name v in
  let render (j : Scenario.Job.t) =
    let analysis =
      match j.Scenario.Job.analysis with
      | Scenario.Job.Special { regions; lambda } ->
          [
            field "analysis" "\"special\"";
            field "regions" (string_of_int regions);
            field "lambda" (Util.Json.number_to_string lambda);
            field "leak_scale" (Util.Json.number_to_string j.Scenario.Job.leak_scale);
          ]
      | _ -> [ field "analysis" "\"transient\"";
               field "drain_scale" (Util.Json.number_to_string j.Scenario.Job.drain_scale) ]
    in
    "    { "
    ^ String.concat ", " (field "name" (Printf.sprintf "%S" j.Scenario.Job.name) :: analysis)
    ^ " }"
  in
  Printf.sprintf
    "{\n  \"defaults\": { \"nodes\": %d, \"steps\": %d, \"solver\": \"direct\" },\n  \"jobs\": [\n%s\n  ]\n}\n"
    !nodes steps
    (String.concat ",\n" (Array.to_list (Array.map render jobs)))

let () =
  (match Sys.argv with [| _; n |] -> nodes := int_of_string n | _ -> ());
  let jobs =
    Array.append
      (Array.map transient_job drain_corners)
      (Array.map special_job leak_corners)
  in
  let json_path = Filename.temp_file "batch_sweep" ".json" in
  let oc = open_out json_path in
  output_string oc (jobs_json jobs);
  close_out oc;
  Printf.printf "corner batch: %d jobs (also written as %s for `opera batch`)\n\n"
    (Array.length jobs) json_path;
  let cache_dir = Filename.concat (Filename.get_temp_dir_name ()) "batch_sweep_cache" in
  (* Make the cold sweep genuinely cold, even across example re-runs. *)
  if Sys.file_exists cache_dir then
    Array.iter (fun f -> Sys.remove (Filename.concat cache_dir f)) (Sys.readdir cache_dir);
  let run label =
    let config =
      { Scenario.Engine.default_config with Scenario.Engine.cache_dir = Some cache_dir }
    in
    let results, summary = Scenario.Engine.run ~config jobs in
    Printf.printf "%s sweep: %s\n" label (Scenario.Engine.summary_line summary);
    (results, summary)
  in
  let results, cold = run "cold" in
  let _, warm = run "warm" in
  print_newline ();
  (* Corner table from the deterministic job records. *)
  let table =
    Util.Table.create
      [
        ("corner", Util.Table.Left); ("analysis", Util.Table.Left);
        ("probe mean (V)", Util.Table.Right); ("probe sigma (mV)", Util.Table.Right);
        ("worst mu+3sigma drop (mV)", Util.Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      let record = r.Scenario.Engine.record in
      let num f = match Option.bind (Util.Json.member f record) Util.Json.to_float with
        | Some v -> v
        | None -> nan
      in
      Util.Table.add_row table
        [
          r.Scenario.Engine.job.Scenario.Job.name;
          Scenario.Job.analysis_name r.Scenario.Engine.job.Scenario.Job.analysis;
          Printf.sprintf "%.6f" (num "final_mean");
          Printf.sprintf "%.3f" (1e3 *. num "final_std");
          Printf.sprintf "%.2f" (1e3 *. num "worst_guarded_drop");
        ])
    results;
  print_string (Util.Table.render table);
  Printf.printf
    "\nfactor-once / solve-many: %d corners shared %d factorization(s) cold;\n\
     the warm sweep re-used the artifact store (%d factorization(s), %d cache hit(s)).\n"
    cold.Scenario.Engine.jobs cold.Scenario.Engine.factorizations
    warm.Scenario.Engine.factorizations warm.Scenario.Engine.cache_hits
