(* Quickstart: stochastic analysis of a synthetic power grid in ~20 lines.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe a grid (a ~1000-node two-layer mesh by default). *)
  let spec = Powergrid.Grid_spec.default in
  Printf.printf "grid: %s\n" (Powergrid.Grid_spec.describe spec);

  (* 2. Pick the paper's process-variation model: 3-sigma variations of
     20% in metal width, 15% in thickness, 20% in channel length. *)
  let vm = Opera.Varmodel.paper_default in
  Printf.printf "variations: %s\n\n" (Opera.Varmodel.describe vm);

  (* 3. Expand the stochastic MNA system over an order-2 Hermite basis and
     run the Galerkin transient (2 clock cycles at 0.125 ns resolution). *)
  let circuit = Powergrid.Grid_gen.generate spec in
  let model = Opera.Stochastic_model.build ~order:2 vm ~vdd:spec.Powergrid.Grid_spec.vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, stats = Opera.Galerkin.solve_transient ~options model ~h:0.125e-9 ~steps:16 in
  Printf.printf "solved a %d-unknown augmented system (%d nonzeros) in %.2f s\n\n"
    stats.Opera.Galerkin.aug_dim stats.Opera.Galerkin.nnz_aug
    (stats.Opera.Galerkin.factor_seconds +. stats.Opera.Galerkin.step_seconds);

  (* 4. Every node now carries mean and sigma at every timestep. *)
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let worst_step = ref 1 and worst_node = ref 0 and worst_drop = ref 0.0 in
  for step = 1 to response.Opera.Response.steps do
    let drop, node = Opera.Response.worst_mean_drop response ~step in
    if drop > !worst_drop then begin
      worst_drop := drop;
      worst_node := node;
      worst_step := step
    end
  done;
  let sigma = Opera.Response.std_at response ~step:!worst_step ~node:!worst_node in
  Printf.printf "worst mean drop: %.1f mV (%.2f%% of VDD) at node %d, t = %.3g ns\n"
    (1e3 *. !worst_drop)
    (100.0 *. !worst_drop /. vdd)
    !worst_node
    (float_of_int !worst_step *. 0.125);
  Printf.printf "  +-3 sigma there: %.1f mV, i.e. %.0f%% of the nominal drop\n"
    (3e3 *. sigma)
    (300.0 *. sigma /. !worst_drop);

  (* 5. The probe node carries its full polynomial-chaos expansion: an
     explicit analytic voltage model you can sample in nanoseconds. *)
  let pce = Opera.Response.pce_at response ~node:probe ~step:!worst_step in
  let rng = Prob.Rng.create () in
  Printf.printf "\nprobe node %d at the same instant:\n" probe;
  Printf.printf "  mean %.6f V, sigma %.2e V, skewness %+.3f\n" (Polychaos.Pce.mean pce)
    (Polychaos.Pce.std pce) (Polychaos.Pce.skewness pce);
  Printf.printf "  three sampled realizations: %.6f  %.6f  %.6f V\n"
    (Polychaos.Pce.sample pce rng) (Polychaos.Pce.sample pce rng) (Polychaos.Pce.sample pce rng)
