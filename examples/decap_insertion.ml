(* Variation-aware decap insertion.

   A practical use of the stochastic response: find the nodes whose
   mu + 3 sigma drop violates a budget, add decoupling capacitance there,
   and re-run the stochastic analysis to verify the fix under the same
   process variations.

   Run with:  dune exec examples/decap_insertion.exe [-- <nodes>] *)

let h = 0.125e-9

let steps = 16

let analyze vdd circuit =
  let model = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let options =
    { Opera.Galerkin.default_options with
      Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 } }
  in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h ~steps in
  let n = model.Opera.Stochastic_model.n in
  let guarded = Array.make n 0.0 in
  for step = 1 to steps do
    for node = 0 to n - 1 do
      let mu = Opera.Response.mean_at response ~step ~node in
      let sd = Opera.Response.std_at response ~step ~node in
      guarded.(node) <- Float.max guarded.(node) (vdd -. mu +. (3.0 *. sd))
    done
  done;
  guarded

let () =
  let target = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1500 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  Printf.printf "grid: %s\n" (Powergrid.Grid_spec.describe spec);

  let before = analyze vdd circuit in
  let n = Array.length before in
  let budget = 0.96 *. Array.fold_left Float.max 0.0 before in
  let violators =
    List.init n (fun i -> i) |> List.filter (fun i -> before.(i) > budget)
  in
  Printf.printf "budget %.2f%% VDD: %d nodes violate at mu+3sigma\n"
    (100.0 *. budget /. vdd)
    (List.length violators);

  (* Drop extra decap on each violator (10x the per-node load cap). *)
  let decap = 10.0 *. spec.Powergrid.Grid_spec.node_cap in
  let extra =
    List.map
      (fun node ->
        { Powergrid.Circuit.cnode1 = node; cnode2 = Powergrid.Circuit.ground; farads = decap;
          ckind = Powergrid.Circuit.Fixed })
      violators
  in
  let fixed_circuit = Powergrid.Circuit.with_extra_capacitors circuit extra in
  Printf.printf "inserted %.1f pF of decap across %d nodes\n\n" (1e12 *. decap *. float_of_int (List.length violators))
    (List.length violators);

  let after = analyze vdd fixed_circuit in
  let still = List.filter (fun i -> after.(i) > budget) violators in
  Printf.printf "%-10s %-18s %-18s\n" "node" "before (%VDD)" "after (%VDD)";
  List.iteri
    (fun k node ->
      if k < 8 then
        Printf.printf "%-10d %-18.3f %-18.3f\n" node
          (100.0 *. before.(node) /. vdd)
          (100.0 *. after.(node) /. vdd))
    violators;
  Printf.printf "\nviolations remaining after the fix: %d of %d\n" (List.length still)
    (List.length violators);
  let worst_before = Array.fold_left Float.max 0.0 before in
  let worst_after = Array.fold_left Float.max 0.0 after in
  Printf.printf "worst mu+3sigma drop: %.3f%% -> %.3f%% of VDD\n"
    (100.0 *. worst_before /. vdd)
    (100.0 *. worst_after /. vdd)
