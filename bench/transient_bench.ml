(* Transient hot-path bench: persistent pool, level-scheduled solves,
   warm-started PCG.

   For each grid size x chaos order the same expanded model is stepped
   through four solver configurations:

     direct/seq     Direct solver, domains=1 (sequential CSC sweeps)
     direct/pooled  Direct solver, domains=4 (level-scheduled sweeps;
                    chunks drain through Util.Parallel's persistent
                    pool, or inline on single-core machines)
     pcg/cold       Mean-block PCG, zero initial guess every step
     pcg/warm       Mean-block PCG, warm-started from the previous
                    step's coefficients (linear extrapolation)

   and writes BENCH_transient.json:

     { "transient": { "cores": C, "pool_workers": W,
         "pool": { "dispatches": D, "per_dispatch_ns": T },
         "records": [
           { "nodes": N, "order": P, "steps": S, "solver": "direct",
             "domains": 1, "warm_start": false, "reps": R,
             "step_s": ..., "factor_s": ..., "pcg_iters": 0 }, ... ] },
       "metrics": { ... } }

   validated by validate_metrics.exe (the `make bench-transient`
   target).  The bench also *asserts* the hot path's contracts — the
   pooled level-scheduled waveforms are bitwise identical to the
   sequential ones, warm starts agree with cold starts within solver
   tolerance while spending fewer total PCG iterations (>= 30% fewer on
   the flagship 1000-node/order-3 case), and the pooled direct stepping
   is no slower than the sequential path — so a hot-path regression
   fails the target rather than just skewing the numbers.  Timings take
   the best of [--reps] runs to damp scheduler noise. *)

let sizes = ref [ 500; 1000 ]
let orders = ref [ 2; 3 ]
let steps = ref 24
let reps = ref 3
let quick = ref false
let out_file = ref "BENCH_transient.json"

type run = {
  nodes : int;
  order : int;
  solver : string;  (* "direct" | "pcg" *)
  domains : int;
  warm_start : bool;
  step_s : float;  (* best-of-reps stepping wall time *)
  factor_s : float;
  pcg_iters : int;  (* total over all steps (0 for direct) *)
  response : Opera.Response.t;  (* last rep's waveforms *)
}

let options_for ~probes ~solver ~domains ~warm_start =
  {
    Opera.Galerkin.default_options with
    Opera.Galerkin.solver;
    ordering = Linalg.Ordering.Nested_dissection;
    probes;
    domains;
    policy = Opera.Galerkin.Fail;
    warm_start;
  }

let run_config ~nodes ~order ~probes model ~label ~solver ~domains ~warm_start =
  let solver_kind, solver_name =
    match solver with
    | `Direct -> (Opera.Galerkin.Direct, "direct")
    | `Pcg -> (Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 }, "pcg")
  in
  let options = options_for ~probes ~solver:solver_kind ~domains ~warm_start in
  let best = ref infinity and factor = ref 0.0 and iters = ref 0 in
  let response = ref None in
  for _ = 1 to Int.max 1 !reps do
    let r, stats = Opera.Galerkin.solve_transient ~options model ~h:125e-12 ~steps:!steps in
    if stats.Opera.Galerkin.step_seconds < !best then best := stats.Opera.Galerkin.step_seconds;
    factor := stats.Opera.Galerkin.factor_seconds;
    iters := stats.Opera.Galerkin.pcg_iterations;
    response := Some r
  done;
  let response = Option.get !response in
  Printf.printf "  %-14s domains=%d warm=%-5b  step_s=%.4f  pcg_iters=%d\n%!" label domains
    warm_start !best !iters;
  {
    nodes;
    order;
    solver = solver_name;
    domains;
    warm_start;
    step_s = !best;
    factor_s = !factor;
    pcg_iters = !iters;
    response;
  }

(* Bitwise waveform identity: the level-scheduled/pooled paths promise
   the exact floats of the sequential sweeps, not an approximation. *)
let identical_response (a : Opera.Response.t) (b : Opera.Response.t) =
  a.Opera.Response.mean = b.Opera.Response.mean
  && a.Opera.Response.variance = b.Opera.Response.variance
  && a.Opera.Response.probe_coefs = b.Opera.Response.probe_coefs

let max_abs_diff (a : float array) (b : float array) =
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("transient_bench: " ^ s); exit 1) fmt

(* Per-dispatch overhead of the persistent pool, measured against a
   forced single-worker pool on an empty body.  [set_pool_cap] tears the
   pool down afterwards so the solver runs above are unaffected. *)
let measure_pool_overhead () =
  Util.Parallel.set_pool_cap (Some 1);
  let body ~chunk:_ ~lo:_ ~hi:_ = () in
  (* warm-up dispatch creates the pool and parks the worker *)
  Util.Parallel.for_chunks ~domains:2 2 body;
  let rounds = 2000 in
  let d0 = Util.Parallel.pool_dispatches () in
  let t0 = Util.Timer.start () in
  for _ = 1 to rounds do
    Util.Parallel.for_chunks ~domains:2 2 body
  done;
  let elapsed = Util.Timer.elapsed_s t0 in
  let dispatched = Util.Parallel.pool_dispatches () - d0 in
  Util.Parallel.set_pool_cap None;
  if dispatched <> rounds then die "pool dispatched %d jobs, expected %d" dispatched rounds;
  (dispatched, elapsed /. float_of_int rounds *. 1e9)

let run_json (r : run) =
  Util.Json.Obj
    [
      ("nodes", Util.Json.Num (float_of_int r.nodes));
      ("order", Util.Json.Num (float_of_int r.order));
      ("steps", Util.Json.Num (float_of_int !steps));
      ("solver", Util.Json.Str r.solver);
      ("domains", Util.Json.Num (float_of_int r.domains));
      ("warm_start", Util.Json.Bool r.warm_start);
      ("reps", Util.Json.Num (float_of_int (Int.max 1 !reps)));
      ("step_s", Util.Json.Num r.step_s);
      ("factor_s", Util.Json.Num r.factor_s);
      ("pcg_iters", Util.Json.Num (float_of_int r.pcg_iters));
    ]

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        sizes := [ 240 ];
        orders := [ 2 ];
        steps := 6;
        reps := 1;
        parse rest
    | "--steps" :: v :: rest ->
        steps := int_of_string v;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "transient_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let vm = Opera.Varmodel.paper_default in
  let records = ref [] in
  List.iter
    (fun nodes ->
      let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
      let circuit = Powergrid.Grid_gen.generate spec in
      let probes = [| Powergrid.Grid_gen.center_node spec |] in
      List.iter
        (fun order ->
          Printf.printf "%d nodes, order %d, %d steps:\n%!" nodes order !steps;
          let model =
            Opera.Stochastic_model.build ~order vm ~vdd:spec.Powergrid.Grid_spec.vdd circuit
          in
          let go = run_config ~nodes ~order ~probes model in
          let direct_seq = go ~label:"direct/seq" ~solver:`Direct ~domains:1 ~warm_start:false in
          let direct_pool =
            go ~label:"direct/pooled" ~solver:`Direct ~domains:4 ~warm_start:false
          in
          let pcg_cold = go ~label:"pcg/cold" ~solver:`Pcg ~domains:1 ~warm_start:false in
          let pcg_warm = go ~label:"pcg/warm" ~solver:`Pcg ~domains:1 ~warm_start:true in
          (* Contracts, enforced. *)
          if not (identical_response direct_seq.response direct_pool.response) then
            die "%dn/o%d: pooled level-scheduled waveforms differ bitwise from sequential" nodes
              order;
          let drift =
            max_abs_diff pcg_warm.response.Opera.Response.mean
              pcg_cold.response.Opera.Response.mean
          in
          if drift > 1e-6 then
            die "%dn/o%d: warm-start mean drifted %.3e from cold start" nodes order drift;
          if pcg_warm.pcg_iters >= pcg_cold.pcg_iters then
            die "%dn/o%d: warm start did not reduce pcg iterations (%d >= %d)" nodes order
              pcg_warm.pcg_iters pcg_cold.pcg_iters;
          let flagship = nodes = 1000 && order = 3 in
          if flagship then begin
            if float_of_int pcg_warm.pcg_iters > 0.7 *. float_of_int pcg_cold.pcg_iters then
              die "1000n/o3: warm start saved < 30%% of pcg iterations (%d vs %d)"
                pcg_warm.pcg_iters pcg_cold.pcg_iters;
            if direct_pool.step_s > direct_seq.step_s then
              die "1000n/o3: pooled level-scheduled stepping slower than sequential (%.4fs > %.4fs)"
                direct_pool.step_s direct_seq.step_s
          end;
          records := !records @ [ direct_seq; direct_pool; pcg_cold; pcg_warm ])
        !orders)
    !sizes;
  let dispatches, per_dispatch_ns = measure_pool_overhead () in
  Printf.printf "pool: %d dispatches, %.0f ns/dispatch (forced 1-worker pool)\n%!" dispatches
    per_dispatch_ns;
  let metrics =
    match Util.Json.parse (Util.Metrics.to_json Util.Metrics.global) with
    | Ok j -> j
    | Error e -> die "metrics registry is not valid JSON: %s" e
  in
  let doc =
    Util.Json.Obj
      [
        ( "transient",
          Util.Json.Obj
            [
              ( "cores",
                Util.Json.Num (float_of_int (Domain.recommended_domain_count ())) );
              ("pool_workers", Util.Json.Num (float_of_int (Util.Parallel.pool_workers ())));
              ( "pool",
                Util.Json.Obj
                  [
                    ("dispatches", Util.Json.Num (float_of_int dispatches));
                    ("per_dispatch_ns", Util.Json.Num per_dispatch_ns);
                  ] );
              ("records", Util.Json.List (List.map run_json !records));
            ] );
        ("metrics", metrics);
      ]
  in
  let oc = open_out !out_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Util.Json.render doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out_file
