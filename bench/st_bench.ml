(* Stochastic-testing backend bench: decoupled point solves vs the
   coupled solvers.

   For each chaos order the same flagship-grid model is stepped through
   three backends:

     st           N+1 decoupled point transients on per-point factors
                  (Opera.St_solver, sequential fan-out)
     matrix-free  coupled PCG, operator applied from the per-rank
                  matrices, warm-started
     direct       assembled augmented system, one big factorization

   and writes BENCH_st.json:

     { "st": { "nodes": N, "steps": S, "crossover_order": O,
         "records": [
           { "order": P, "basis": N+1, "points": N+1,
             "st_factor_s": ..., "st_step_s": ..., "st_total_s": ...,
             "refine_sweeps": ..., "refine_fallbacks": ...,
             "pcg_total_s": ..., "pcg_iters": ...,
             "direct_total_s": ..., "speedup_vs_pcg": ...,
             "mean_drift": ..., "std_drift_rel": ... }, ... ] },
       "metrics": { ... } }

   validated by validate_metrics.exe (the `make bench-st` target).  The
   bench *asserts* the backend's contracts — ST moments track the
   coupled direct solution within chaos-truncation tolerance (means to
   5e-4 V, sigmas to 8% of the peak sigma), the DC refinement stays
   healthy, and on the full run the crossover order (first order where
   ST beats matrix-free PCG wall-clock) is <= 3 with ST winning at every
   order from there on — so a backend regression fails the target
   rather than just skewing the numbers.  Timings take the best of
   [--reps] runs to damp scheduler noise. *)

let nodes = ref 1000
let orders = ref [ 2; 3; 4; 5 ]
let steps = ref 24
let reps = ref 3
let quick = ref false
let out_file = ref "BENCH_st.json"

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("st_bench: " ^ s); exit 1) fmt

type run = {
  order : int;
  basis : int;
  points : int;
  st_factor_s : float;
  st_step_s : float;
  st_total_s : float;
  refine_sweeps : int;
  refine_fallbacks : int;
  pcg_total_s : float;
  pcg_iters : int;
  direct_total_s : float;
  mean_drift : float;
  std_drift_rel : float;
}

let best_of f =
  let best = ref infinity and keep = ref None in
  for _ = 1 to Int.max 1 !reps do
    let t0 = Util.Timer.start () in
    let r = f () in
    let elapsed = Util.Timer.elapsed_s t0 in
    if elapsed < !best then begin
      best := elapsed;
      keep := Some r
    end
  done;
  (Option.get !keep, !best)

let galerkin_options ~probes ~solver =
  {
    Opera.Galerkin.default_options with
    Opera.Galerkin.solver;
    ordering = Linalg.Ordering.Nested_dissection;
    probes;
    domains = 1;
    policy = Opera.Galerkin.Fail;
    warm_start = true;
  }

let max_abs_diff (a : float array) (b : float array) =
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m

(* sigma drift relative to the peak sigma of the reference — the sigmas
   themselves are sub-mV, so an absolute bound would be vacuous. *)
let std_drift_rel (a : Opera.Response.t) (b : Opera.Response.t) =
  let std v = Array.map (fun x -> sqrt (Float.max 0.0 x)) v in
  let sa = std a.Opera.Response.variance and sb = std b.Opera.Response.variance in
  let peak = Array.fold_left Float.max 0.0 sb in
  if peak <= 0.0 then 0.0 else max_abs_diff sa sb /. peak

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        nodes := 240;
        orders := [ 2; 3 ];
        steps := 6;
        reps := 1;
        parse rest
    | "--steps" :: v :: rest ->
        steps := int_of_string v;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "st_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default !nodes in
  let circuit = Powergrid.Grid_gen.generate spec in
  let probes = [| Powergrid.Grid_gen.center_node spec |] in
  let vm = Opera.Varmodel.paper_default in
  let h = 125e-12 in
  let records = ref [] in
  List.iter
    (fun order ->
      Printf.printf "%d nodes, order %d, %d steps:\n%!" !nodes order !steps;
      let model =
        Opera.Stochastic_model.build ~order vm ~vdd:spec.Powergrid.Grid_spec.vdd circuit
      in
      let basis = Polychaos.Basis.size model.Opera.Stochastic_model.basis in
      let st_options = { Opera.St_solver.default_options with Opera.St_solver.probes; domains = 1 } in
      let (st_resp, st_stats), st_total_s =
        best_of (fun () -> Opera.St_solver.solve_transient ~options:st_options model ~h ~steps:!steps)
      in
      let (pcg_resp, pcg_stats), pcg_total_s =
        best_of (fun () ->
            Opera.Galerkin.solve_transient
              ~options:
                (galerkin_options ~probes
                   ~solver:(Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 500 }))
              model ~h ~steps:!steps)
      in
      let (direct_resp, _), direct_total_s =
        best_of (fun () ->
            Opera.Galerkin.solve_transient
              ~options:(galerkin_options ~probes ~solver:Opera.Galerkin.Direct)
              model ~h ~steps:!steps)
      in
      let mean_drift =
        max_abs_diff st_resp.Opera.Response.mean direct_resp.Opera.Response.mean
      in
      let sdrift = std_drift_rel st_resp direct_resp in
      let pcg_drift =
        max_abs_diff pcg_resp.Opera.Response.mean direct_resp.Opera.Response.mean
      in
      Printf.printf
        "  st     %d points  total_s=%.4f (factor %.4f, step %.4f)\n\
        \  mf-pcg %4d iters  total_s=%.4f\n\
        \  direct            total_s=%.4f\n\
        \  drift: st mean %.2e, st sigma %.2f%% of peak, pcg mean %.2e\n%!"
        st_stats.Opera.St_solver.points st_total_s st_stats.Opera.St_solver.factor_seconds
        st_stats.Opera.St_solver.step_seconds pcg_stats.Opera.Galerkin.pcg_iterations pcg_total_s
        direct_total_s mean_drift (100.0 *. sdrift) pcg_drift;
      (* Contracts, enforced. *)
      if not (Linalg.Solve_report.agg_healthy st_stats.Opera.St_solver.health) then
        die "order %d: st refinement unhealthy (%s)" order
          (Linalg.Solve_report.agg_summary st_stats.Opera.St_solver.health);
      if st_stats.Opera.St_solver.points <> basis then
        die "order %d: expected %d testing points, solved %d" order basis
          st_stats.Opera.St_solver.points;
      if mean_drift > 5e-4 then
        die "order %d: st mean drifted %.3e V from the coupled direct solution" order mean_drift;
      if sdrift > 0.08 then
        die "order %d: st sigma drifted %.1f%% of the peak sigma" order (100.0 *. sdrift);
      records :=
        !records
        @ [
            {
              order;
              basis;
              points = st_stats.Opera.St_solver.points;
              st_factor_s = st_stats.Opera.St_solver.factor_seconds;
              st_step_s = st_stats.Opera.St_solver.step_seconds;
              st_total_s;
              refine_sweeps = st_stats.Opera.St_solver.refine_sweeps;
              refine_fallbacks = st_stats.Opera.St_solver.health.Linalg.Solve_report.fallbacks;
              pcg_total_s;
              pcg_iters = pcg_stats.Opera.Galerkin.pcg_iterations;
              direct_total_s;
              mean_drift;
              std_drift_rel = sdrift;
            };
          ])
    !orders;
  let crossover =
    List.fold_left
      (fun acc r -> if acc < 0 && r.st_total_s < r.pcg_total_s then r.order else acc)
      (-1) !records
  in
  Printf.printf "crossover order (st beats matrix-free pcg): %d\n%!" crossover;
  if not !quick then begin
    if crossover < 0 || crossover > 3 then
      die "st does not overtake matrix-free pcg by order 3 (crossover %d)" crossover;
    List.iter
      (fun r ->
        if r.order >= 3 && r.st_total_s >= r.pcg_total_s then
          die "order %d: st (%.4fs) did not beat matrix-free pcg (%.4fs)" r.order r.st_total_s
            r.pcg_total_s)
      !records
  end;
  let num v = Util.Json.Num v in
  let run_json (r : run) =
    Util.Json.Obj
      [
        ("order", num (float_of_int r.order));
        ("basis", num (float_of_int r.basis));
        ("points", num (float_of_int r.points));
        ("st_factor_s", num r.st_factor_s);
        ("st_step_s", num r.st_step_s);
        ("st_total_s", num r.st_total_s);
        ("refine_sweeps", num (float_of_int r.refine_sweeps));
        ("refine_fallbacks", num (float_of_int r.refine_fallbacks));
        ("pcg_total_s", num r.pcg_total_s);
        ("pcg_iters", num (float_of_int r.pcg_iters));
        ("direct_total_s", num r.direct_total_s);
        ("speedup_vs_pcg", num (r.pcg_total_s /. r.st_total_s));
        ("mean_drift", num r.mean_drift);
        ("std_drift_rel", num r.std_drift_rel);
      ]
  in
  let metrics =
    match Util.Json.parse (Util.Metrics.to_json Util.Metrics.global) with
    | Ok j -> j
    | Error e -> die "metrics registry is not valid JSON: %s" e
  in
  let doc =
    Util.Json.Obj
      [
        ( "st",
          Util.Json.Obj
            [
              ("nodes", num (float_of_int !nodes));
              ("steps", num (float_of_int !steps));
              ("crossover_order", num (float_of_int crossover));
              ("records", Util.Json.List (List.map run_json !records));
            ] );
        ("metrics", metrics);
      ]
  in
  let oc = open_out !out_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Util.Json.render doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out_file
