(* Schema check for the JSON this repository emits: the CLI's
   [--metrics-out FILE] registry dumps, the bench harness's
   BENCH_galerkin.json ({"records": [...], "metrics": {...}}), the
   batch bench's BENCH_batch.json ({"batch": {...}, "metrics": {...}}),
   the transient hot-path bench's BENCH_transient.json
   ({"transient": {...}, "metrics": {...}}) and the stochastic-testing
   bench's BENCH_st.json ({"st": {...}, "metrics": {...}}, including
   the moment-drift bounds and the points-per-basis invariant), the
   analysis-service bench's BENCH_service.json ({"service": {...},
   "metrics": {...}}, gating the 5x warm-replay speedup and the
   zero-factorization warm contract), the scaling bench's
   BENCH_scale.json ({"scale": {...}, "metrics": {...}}, gating the
   streaming-assembly byte budget, AMG iteration flatness and the
   zero-decode warm replay), and opera-lint's
   LINT_report.json v2 ({"tool": "opera-lint", ...} with per-rule,
   race, cache and timing blocks).

     validate_metrics.exe FILE...

   Exits 0 when every file parses and matches its schema, 1 otherwise —
   the `make bench-metrics` target runs this over freshly produced
   artifacts so a schema regression fails CI instead of surfacing
   downstream in whoever scrapes the files. *)

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate_metric name (v : Util.Json.t) =
  match Util.Json.member "type" v with
  | Some (Util.Json.Str "counter") -> (
      match Option.bind (Util.Json.member "value" v) Util.Json.to_int with
      | Some _ -> Ok ()
      | None -> fail "metric %S: counter without integer \"value\"" name)
  | Some (Util.Json.Str "histogram") ->
      let field f =
        match Option.bind (Util.Json.member f v) Util.Json.to_float with
        | Some _ -> Ok ()
        | None -> fail "metric %S: histogram missing numeric %S" name f
      in
      let ( let* ) = Result.bind in
      let* () = field "count" in
      let* () = field "sum" in
      let* () = field "mean" in
      (match Util.Json.member "buckets" v with
      | Some (Util.Json.Obj buckets) ->
          if List.mem_assoc "le_inf" buckets then Ok ()
          else fail "metric %S: histogram buckets lack the le_inf overflow bucket" name
      | _ -> fail "metric %S: histogram without \"buckets\" object" name)
  | _ -> fail "metric %S: value is neither a counter nor a histogram" name

let validate_registry (j : Util.Json.t) =
  match j with
  | Util.Json.Obj fields ->
      List.fold_left
        (fun acc (name, v) -> Result.bind acc (fun () -> validate_metric name v))
        (Ok ()) fields
  | _ -> fail "metrics registry is not a JSON object"

let validate_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some _ -> Ok ()
    | None -> fail "record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* () = int_field "grid_nodes" in
  let* () = int_field "order" in
  let* () = int_field "pcg_iters" in
  let* () = int_field "unconverged" in
  let* () = int_field "fallbacks" in
  let* () = float_field "assemble_s" in
  let* () = float_field "factor_s" in
  let* () = float_field "step_s" in
  match Option.bind (Util.Json.member "solver" r) Util.Json.to_string with
  | Some _ -> Ok ()
  | None -> fail "record %d: missing string \"solver\"" i

let validate_bench (j : Util.Json.t) records =
  let ( let* ) = Result.bind in
  let* () =
    match Util.Json.to_list records with
    | None -> fail "\"records\" is not an array"
    | Some rs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_record i r) (fun () -> go (i + 1) rest)
        in
        go 0 rs
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "bench file lacks the \"metrics\" object"

let validate_batch_run i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "run %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some _ -> Ok ()
    | None -> fail "run %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Util.Json.member "label" r) Util.Json.to_string with
    | Some _ -> Ok ()
    | None -> fail "run %d: missing string \"label\"" i
  in
  let* () = int_field "jobs_parallel" in
  let* () = int_field "factorizations" in
  let* () = int_field "cache_hits" in
  let* () = int_field "cache_misses" in
  let* () = int_field "replayed" in
  let* () = int_field "journaled" in
  let* () = float_field "elapsed_s" in
  float_field "jobs_per_s"

let validate_batch (j : Util.Json.t) batch =
  let ( let* ) = Result.bind in
  let int_field f =
    match Option.bind (Util.Json.member f batch) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "\"batch\": missing integer %S" f
  in
  let* () = int_field "jobs" in
  let* () = int_field "groups" in
  let* () =
    match Option.bind (Util.Json.member "runs" batch) Util.Json.to_list with
    | None -> fail "\"batch\": missing \"runs\" array"
    | Some runs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_batch_run i r) (fun () -> go (i + 1) rest)
        in
        go 0 runs
  in
  match Util.Json.member "metrics" j with
  | Some m ->
      let* () = validate_registry m in
      (* The resume/shard journal shows up as registry.* counters; a
         batch artifact without them means the bench stopped exercising
         the journaling path. *)
      let counter name =
        match Util.Json.member name m with
        | Some v -> validate_metric name v
        | None -> fail "batch metrics lack the %S counter" name
      in
      let* () = counter "registry.replays" in
      let* () = counter "registry.writes" in
      counter "registry.corrupt"
  | None -> fail "batch file lacks the \"metrics\" object"

let validate_transient_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "transient record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some _ -> Ok ()
    | None -> fail "transient record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* () = int_field "nodes" in
  let* () = int_field "order" in
  let* () = int_field "steps" in
  let* () = int_field "domains" in
  let* () = int_field "reps" in
  let* () = int_field "pcg_iters" in
  let* () = float_field "step_s" in
  let* () = float_field "factor_s" in
  let* () =
    match Util.Json.member "warm_start" r with
    | Some (Util.Json.Bool _) -> Ok ()
    | _ -> fail "transient record %d: missing boolean \"warm_start\"" i
  in
  match Option.bind (Util.Json.member "solver" r) Util.Json.to_string with
  | Some ("direct" | "pcg") -> Ok ()
  | Some s -> fail "transient record %d: unknown solver %S" i s
  | None -> fail "transient record %d: missing string \"solver\"" i

let validate_transient (j : Util.Json.t) transient =
  let ( let* ) = Result.bind in
  let int_field f =
    match Option.bind (Util.Json.member f transient) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "\"transient\": missing integer %S" f
  in
  let* () = int_field "cores" in
  let* () = int_field "pool_workers" in
  let* () =
    match Util.Json.member "pool" transient with
    | Some pool -> (
        match
          ( Option.bind (Util.Json.member "dispatches" pool) Util.Json.to_int,
            Option.bind (Util.Json.member "per_dispatch_ns" pool) Util.Json.to_float )
        with
        | Some _, Some _ -> Ok ()
        | _ -> fail "\"transient\".\"pool\": needs \"dispatches\" and \"per_dispatch_ns\"")
    | None -> fail "\"transient\": missing \"pool\" object"
  in
  let* () =
    match Option.bind (Util.Json.member "records" transient) Util.Json.to_list with
    | None -> fail "\"transient\": missing \"records\" array"
    | Some [] -> fail "\"transient\": empty \"records\" array"
    | Some rs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_transient_record i r) (fun () -> go (i + 1) rest)
        in
        go 0 rs
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "transient file lacks the \"metrics\" object"

let validate_st_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some v -> Ok v
    | None -> fail "st record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some v -> Ok v
    | None -> fail "st record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* _ = int_field "order" in
  let* basis = int_field "basis" in
  let* points = int_field "points" in
  let* () =
    if points = basis then Ok ()
    else fail "st record %d: %d testing points for a %d-term basis" i points basis
  in
  let* _ = int_field "refine_sweeps" in
  let* _ = int_field "refine_fallbacks" in
  let* _ = int_field "pcg_iters" in
  let* _ = float_field "st_factor_s" in
  let* _ = float_field "st_step_s" in
  let* _ = float_field "st_total_s" in
  let* _ = float_field "pcg_total_s" in
  let* _ = float_field "direct_total_s" in
  let* _ = float_field "speedup_vs_pcg" in
  (* The moment-drift bounds st_bench enforces at generation time are
     re-checked here, so a hand-edited or stale artifact cannot claim
     agreement the numbers do not show. *)
  let* mean_drift = float_field "mean_drift" in
  let* () =
    if mean_drift <= 5e-4 then Ok ()
    else fail "st record %d: mean_drift %g exceeds the 5e-4 V bound" i mean_drift
  in
  let* sdrift = float_field "std_drift_rel" in
  if sdrift <= 0.08 then Ok ()
  else fail "st record %d: std_drift_rel %g exceeds the 8%% bound" i sdrift

let validate_st (j : Util.Json.t) st =
  let ( let* ) = Result.bind in
  let int_field f =
    match Option.bind (Util.Json.member f st) Util.Json.to_int with
    | Some v -> Ok v
    | None -> fail "\"st\": missing integer %S" f
  in
  let* _ = int_field "nodes" in
  let* _ = int_field "steps" in
  let* crossover = int_field "crossover_order" in
  let* () =
    if crossover >= -1 then Ok ()
    else fail "\"st\": crossover_order %d is not an order or the -1 sentinel" crossover
  in
  let* () =
    match Option.bind (Util.Json.member "records" st) Util.Json.to_list with
    | None -> fail "\"st\": missing \"records\" array"
    | Some [] -> fail "\"st\": empty \"records\" array"
    | Some rs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_st_record i r) (fun () -> go (i + 1) rest)
        in
        go 0 rs
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "st file lacks the \"metrics\" object"

(* BENCH_scale.json: {"scale": {sizes, records, replay}, "metrics":
   {...}}.  Beyond shape, this re-checks the scaling contracts the bench
   enforces at generation time: streaming-assembly scratch under 320
   bytes/node, AMG-PCG iterations within 2x across the sweep, and a
   warm artifact replay with zero full decodes. *)
let validate_scale_solve i j (s : Util.Json.t) =
  let ( let* ) = Result.bind in
  let* label =
    match Option.bind (Util.Json.member "precond" s) Util.Json.to_string with
    | Some ("amg" | "ic0") as l -> Ok (Option.get l)
    | Some l -> fail "scale record %d solve %d: unknown precond %S" i j l
    | None -> fail "scale record %d solve %d: missing string \"precond\"" i j
  in
  let float_field f =
    match Option.bind (Util.Json.member f s) Util.Json.to_float with
    | Some v when v >= 0.0 -> Ok v
    | Some _ -> fail "scale record %d solve %d: %S is negative" i j f
    | None -> fail "scale record %d solve %d: missing number %S" i j f
  in
  let* _ = float_field "setup_s" in
  let* _ = float_field "solve_s" in
  let* _ = float_field "stored_nnz" in
  match Option.bind (Util.Json.member "iters" s) Util.Json.to_int with
  | Some it when it >= 1 -> Ok (label, it)
  | Some it -> fail "scale record %d solve %d: %d iterations" i j it
  | None -> fail "scale record %d solve %d: missing integer \"iters\"" i j

let validate_scale_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some v -> Ok v
    | None -> fail "scale record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some v -> Ok v
    | None -> fail "scale record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* nodes = int_field "nodes" in
  let* () = if nodes >= 1 then Ok () else fail "scale record %d: %d nodes" i nodes in
  let* _ = float_field "assemble_s" in
  let* _ = int_field "stream_stamps" in
  let* _ = int_field "stream_nnz" in
  let* _ = int_field "stream_bytes" in
  let* _ = float_field "heap_mb" in
  let* bpn = float_field "bytes_per_node" in
  let* () =
    if bpn <= 320.0 then Ok ()
    else fail "scale record %d: streaming scratch %g B/node exceeds the 320 B/node budget" i bpn
  in
  match Option.bind (Util.Json.member "solves" r) Util.Json.to_list with
  | None -> fail "scale record %d: missing \"solves\" array" i
  | Some [] -> fail "scale record %d: empty \"solves\" array" i
  | Some solves ->
      let rec go j acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest ->
            let* solve = validate_scale_solve i j s in
            go (j + 1) (solve :: acc) rest
      in
      let* solves = go 0 [] solves in
      (match List.assoc_opt "amg" solves with
      | Some amg_iters -> Ok (nodes, amg_iters)
      | None -> fail "scale record %d: no \"amg\" solve" i)

let validate_scale (j : Util.Json.t) scale =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Util.Json.member "sizes" scale) Util.Json.to_list with
    | None | Some [] -> fail "\"scale\": missing or empty \"sizes\" array"
    | Some _ -> Ok ()
  in
  let* amg_iters =
    match Option.bind (Util.Json.member "records" scale) Util.Json.to_list with
    | None -> fail "\"scale\": missing \"records\" array"
    | Some [] -> fail "\"scale\": empty \"records\" array"
    | Some rs ->
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | r :: rest ->
              let* entry = validate_scale_record i r in
              go (i + 1) (entry :: acc) rest
        in
        go 0 [] rs
  in
  let* () =
    match amg_iters with
    | [] -> Ok ()
    | (n0, base) :: rest ->
        List.fold_left
          (fun acc (n, it) ->
            let* () = acc in
            if it <= 2 * base then Ok ()
            else
              fail "\"scale\": amg iterations not flat (%d at %d nodes vs %d at %d nodes)" it n
                base n0)
          (Ok ()) rest
  in
  let* () =
    match Util.Json.member "replay" scale with
    | None -> fail "\"scale\": missing \"replay\" object"
    | Some replay -> (
        let int_field f =
          match Option.bind (Util.Json.member f replay) Util.Json.to_int with
          | Some v -> Ok v
          | None -> fail "\"scale\".\"replay\": missing integer %S" f
        in
        let* _ = int_field "nodes" in
        let* hits = int_field "map_hits" in
        let* decodes = int_field "full_decodes" in
        if decodes <> 0 then
          fail "\"scale\": warm replay performed %d full decode(s)" decodes
        else if hits < 1 then fail "\"scale\": warm replay never hit the mapped artifact"
        else Ok ())
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "scale file lacks the \"metrics\" object"

(* LINT_report.json v2 (tools/lint).  The rule-id list mirrors the
   opera-lint catalogue; extending the catalogue must extend this list
   or the report fails validation here. *)
let lint_rule_ids =
  [
    "exact-float";
    "domain-race";
    "banned-construct";
    "unsafe-index";
    "missing-mli";
    "determinism";
    "hot-alloc";
    "resource-safety";
    "parse-error";
    "type-error";
  ]

let validate_lint (j : Util.Json.t) =
  let ( let* ) = Result.bind in
  let int_of obj what f =
    match Option.bind (Util.Json.member f obj) Util.Json.to_int with
    | Some v -> Ok v
    | None -> fail "%s: missing integer %S" what f
  in
  let* version = int_of j "lint report" "version" in
  let* () =
    if version = 2 then Ok () else fail "lint report: version %d, want 2" version
  in
  let* files = int_of j "lint report" "files_scanned" in
  let* () = if files >= 0 then Ok () else fail "lint report: negative files_scanned" in
  let* summary =
    match Util.Json.member "summary" j with
    | Some s -> Ok s
    | None -> fail "lint report: missing \"summary\""
  in
  let* total = int_of summary "summary" "total" in
  let* unwaived = int_of summary "summary" "unwaived" in
  let* waived = int_of summary "summary" "waived" in
  let* () =
    if total = unwaived + waived then Ok ()
    else fail "summary: total %d <> unwaived %d + waived %d" total unwaived waived
  in
  let* rules =
    match Util.Json.member "rules" j with
    | Some r -> Ok r
    | None -> fail "lint report: missing \"rules\""
  in
  let* per_rule_total =
    List.fold_left
      (fun acc id ->
        let* acc = acc in
        match Util.Json.member id rules with
        | None -> fail "rules: missing rule %S" id
        | Some entry ->
            let* u = int_of entry ("rules." ^ id) "unwaived" in
            let* w = int_of entry ("rules." ^ id) "waived" in
            Ok (acc + u + w))
      (Ok 0) lint_rule_ids
  in
  let* () =
    if per_rule_total = total then Ok ()
    else fail "rules: per-rule counts sum to %d, summary says %d" per_rule_total total
  in
  let* race =
    match Util.Json.member "race" j with
    | Some r -> Ok r
    | None -> fail "lint report: missing \"race\""
  in
  let* closures = int_of race "race" "closures" in
  let* proven = int_of race "race" "proven" in
  let* waived_closures = int_of race "race" "waived_closures" in
  let* () =
    if proven + waived_closures <= closures then Ok ()
    else
      fail "race: proven %d + waived %d exceeds %d closures" proven waived_closures
        closures
  in
  let* cache =
    match Util.Json.member "cache" j with
    | Some c -> Ok c
    | None -> fail "lint report: missing \"cache\""
  in
  let* _ = int_of cache "cache" "hits" in
  let* _ = int_of cache "cache" "misses" in
  let* timings =
    match Util.Json.member "timings_s" j with
    | Some t -> Ok t
    | None -> fail "lint report: missing \"timings_s\""
  in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        match Option.bind (Util.Json.member f timings) Util.Json.to_float with
        | Some v when v >= 0. -> Ok ()
        | Some v -> fail "timings_s.%s: negative duration %g" f v
        | None -> fail "timings_s: missing number %S" f)
      (Ok ())
      [ "total"; "typecheck"; "rules"; "cache" ]
  in
  let* allowlists =
    match Util.Json.member "allowlists" j with
    | Some a -> Ok a
    | None -> fail "lint report: missing \"allowlists\""
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        match Option.bind (Util.Json.member k allowlists) Util.Json.to_list with
        | Some entries ->
            if List.for_all (fun e -> Util.Json.to_string e <> None) entries then Ok ()
            else fail "allowlists.%s: non-string entry" k
        | None -> fail "allowlists: missing array %S" k)
      (Ok ())
      [ "unsafe"; "clock" ]
  in
  match Option.bind (Util.Json.member "findings" j) Util.Json.to_list with
  | None -> fail "lint report: missing \"findings\" array"
  | Some items ->
      let* () =
        if List.length items = total then Ok ()
        else
          fail "findings: %d entries, summary says %d" (List.length items) total
      in
      let rec go i = function
        | [] -> Ok ()
        | item :: rest ->
            let* rule =
              match Option.bind (Util.Json.member "rule" item) Util.Json.to_string with
              | Some r -> Ok r
              | None -> fail "finding %d: missing string \"rule\"" i
            in
            let* () =
              if List.mem rule lint_rule_ids then Ok ()
              else fail "finding %d: unknown rule %S" i rule
            in
            let* () =
              match Option.bind (Util.Json.member "file" item) Util.Json.to_string with
              | Some _ -> Ok ()
              | None -> fail "finding %d: missing string \"file\"" i
            in
            let* _ = int_of item (Printf.sprintf "finding %d" i) "line" in
            let* _ = int_of item (Printf.sprintf "finding %d" i) "col" in
            let* () =
              match Util.Json.member "waived" item with
              | Some (Util.Json.Bool _) -> Ok ()
              | _ -> fail "finding %d: missing boolean \"waived\"" i
            in
            let* () =
              match Option.bind (Util.Json.member "message" item) Util.Json.to_string with
              | Some _ -> Ok ()
              | None -> fail "finding %d: missing string \"message\"" i
            in
            go (i + 1) rest
      in
      go 0 items

(* BENCH_service.json: {"service": {jobs, clients, runs, warm_speedup,
   factorizations, latency}, "metrics": {...}}.  Beyond shape, this
   gates the service contract itself: warm throughput must be at least
   5x cold (registry replay, not recomputation) and warm submissions
   must factor nothing. *)
let validate_service_run i (r : Util.Json.t) =
  let ( let* ) = Result.bind in
  let field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some v when v >= 0.0 -> Ok v
    | Some _ -> fail "service run %d: %S is negative" i f
    | None -> fail "service run %d: missing number %S" i f
  in
  let* () =
    match Option.bind (Util.Json.member "label" r) Util.Json.to_string with
    | Some ("cold" | "warm" | "concurrent") -> Ok ()
    | Some l -> fail "service run %d: unknown label %S" i l
    | None -> fail "service run %d: missing string \"label\"" i
  in
  let* _ = field "requests" in
  let* _ = field "elapsed_s" in
  let* _ = field "jobs_per_s" in
  let* _ = field "replayed" in
  Ok ()

let validate_service (j : Util.Json.t) service =
  let ( let* ) = Result.bind in
  let num f o =
    match Option.bind (Util.Json.member f o) Util.Json.to_float with
    | Some v -> Ok v
    | None -> fail "\"service\": missing number %S" f
  in
  let* jobs = num "jobs" service in
  let* () = if jobs >= 1.0 then Ok () else fail "\"service\": jobs must be >= 1" in
  let* _ = num "clients" service in
  let* () =
    match Option.bind (Util.Json.member "runs" service) Util.Json.to_list with
    | None -> fail "\"service\": missing \"runs\" array"
    | Some runs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_service_run i r) (fun () -> go (i + 1) rest)
        in
        go 0 runs
  in
  let* speedup = num "warm_speedup" service in
  let* () =
    if speedup >= 5.0 then Ok ()
    else fail "\"service\": warm_speedup %.2f below the 5x replay contract" speedup
  in
  let* () =
    match Util.Json.member "factorizations" service with
    | None -> fail "\"service\": missing \"factorizations\" object"
    | Some f -> (
        let* cold = num "cold" f in
        let* warm = num "warm" f in
        let* () =
          if cold >= 1.0 then Ok () else fail "\"service\": cold run factored nothing"
        in
        if warm = 0.0 then Ok ()
        else fail "\"service\": warm submissions factored %.0f times" warm)
  in
  let* () =
    match Util.Json.member "latency" service with
    | None -> fail "\"service\": missing \"latency\" object"
    | Some l ->
        let* count = num "count" l in
        let* p50 = num "p50_s" l in
        let* p99 = num "p99_s" l in
        if count < 1.0 then fail "\"service\": latency over zero requests"
        else if p50 < 0.0 || p99 < p50 then
          fail "\"service\": latency percentiles disordered (p50 %.6f, p99 %.6f)" p50 p99
        else Ok ()
  in
  match Util.Json.member "metrics" j with
  | Some m ->
      let* () = validate_registry m in
      let counter name =
        match Util.Json.member name m with
        | Some v -> validate_metric name v
        | None -> fail "service metrics lack the %S counter" name
      in
      let* () = counter "service.requests" in
      let* () = counter "service.replays" in
      (match Util.Json.member "service.queue_depth" m with
      | Some v -> validate_metric "service.queue_depth" v
      | None -> fail "service metrics lack the \"service.queue_depth\" histogram")
  | None -> fail "service file lacks the \"metrics\" object"

let validate_file path =
  match Util.Json.parse_file path with
  | Error e -> fail "%s: JSON parse error: %s" path e
  | Ok j -> (
      let tag = Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) in
      match
        ( Util.Json.member "tool" j,
          Util.Json.member "records" j,
          Util.Json.member "batch" j,
          Util.Json.member "transient" j,
          Util.Json.member "st" j,
          Util.Json.member "service" j,
          Util.Json.member "scale" j )
      with
      | Some (Util.Json.Str "opera-lint"), _, _, _, _, _, _ -> tag (validate_lint j)
      | _, Some records, _, _, _, _, _ -> tag (validate_bench j records)
      | _, None, Some batch, _, _, _, _ -> tag (validate_batch j batch)
      | _, None, None, Some transient, _, _, _ -> tag (validate_transient j transient)
      | _, None, None, None, Some st, _, _ -> tag (validate_st j st)
      | _, None, None, None, None, Some service, _ -> tag (validate_service j service)
      | _, None, None, None, None, None, Some scale -> tag (validate_scale j scale)
      | _, None, None, None, None, None, None -> tag (validate_registry j))

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: validate_metrics FILE.json [FILE.json ...]";
    exit 2
  end;
  let failures =
    List.filter_map
      (fun path ->
        match validate_file path with
        | Ok () ->
            Printf.printf "%s: ok\n" path;
            None
        | Error e ->
            Printf.eprintf "%s\n" e;
            Some path)
      files
  in
  if failures <> [] then exit 1
