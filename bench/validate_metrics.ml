(* Schema check for the JSON this repository emits: the CLI's
   [--metrics-out FILE] registry dumps, the bench harness's
   BENCH_galerkin.json ({"records": [...], "metrics": {...}}), the
   batch bench's BENCH_batch.json ({"batch": {...}, "metrics": {...}}),
   the transient hot-path bench's BENCH_transient.json
   ({"transient": {...}, "metrics": {...}}) and the stochastic-testing
   bench's BENCH_st.json ({"st": {...}, "metrics": {...}}, including
   the moment-drift bounds and the points-per-basis invariant).

     validate_metrics.exe FILE...

   Exits 0 when every file parses and matches its schema, 1 otherwise —
   the `make bench-metrics` target runs this over freshly produced
   artifacts so a schema regression fails CI instead of surfacing
   downstream in whoever scrapes the files. *)

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate_metric name (v : Util.Json.t) =
  match Util.Json.member "type" v with
  | Some (Util.Json.Str "counter") -> (
      match Option.bind (Util.Json.member "value" v) Util.Json.to_int with
      | Some _ -> Ok ()
      | None -> fail "metric %S: counter without integer \"value\"" name)
  | Some (Util.Json.Str "histogram") ->
      let field f =
        match Option.bind (Util.Json.member f v) Util.Json.to_float with
        | Some _ -> Ok ()
        | None -> fail "metric %S: histogram missing numeric %S" name f
      in
      let ( let* ) = Result.bind in
      let* () = field "count" in
      let* () = field "sum" in
      let* () = field "mean" in
      (match Util.Json.member "buckets" v with
      | Some (Util.Json.Obj buckets) ->
          if List.mem_assoc "le_inf" buckets then Ok ()
          else fail "metric %S: histogram buckets lack the le_inf overflow bucket" name
      | _ -> fail "metric %S: histogram without \"buckets\" object" name)
  | _ -> fail "metric %S: value is neither a counter nor a histogram" name

let validate_registry (j : Util.Json.t) =
  match j with
  | Util.Json.Obj fields ->
      List.fold_left
        (fun acc (name, v) -> Result.bind acc (fun () -> validate_metric name v))
        (Ok ()) fields
  | _ -> fail "metrics registry is not a JSON object"

let validate_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some _ -> Ok ()
    | None -> fail "record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* () = int_field "grid_nodes" in
  let* () = int_field "order" in
  let* () = int_field "pcg_iters" in
  let* () = int_field "unconverged" in
  let* () = int_field "fallbacks" in
  let* () = float_field "assemble_s" in
  let* () = float_field "factor_s" in
  let* () = float_field "step_s" in
  match Option.bind (Util.Json.member "solver" r) Util.Json.to_string with
  | Some _ -> Ok ()
  | None -> fail "record %d: missing string \"solver\"" i

let validate_bench (j : Util.Json.t) records =
  let ( let* ) = Result.bind in
  let* () =
    match Util.Json.to_list records with
    | None -> fail "\"records\" is not an array"
    | Some rs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_record i r) (fun () -> go (i + 1) rest)
        in
        go 0 rs
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "bench file lacks the \"metrics\" object"

let validate_batch_run i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "run %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some _ -> Ok ()
    | None -> fail "run %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Util.Json.member "label" r) Util.Json.to_string with
    | Some _ -> Ok ()
    | None -> fail "run %d: missing string \"label\"" i
  in
  let* () = int_field "jobs_parallel" in
  let* () = int_field "factorizations" in
  let* () = int_field "cache_hits" in
  let* () = int_field "cache_misses" in
  let* () = int_field "replayed" in
  let* () = int_field "journaled" in
  let* () = float_field "elapsed_s" in
  float_field "jobs_per_s"

let validate_batch (j : Util.Json.t) batch =
  let ( let* ) = Result.bind in
  let int_field f =
    match Option.bind (Util.Json.member f batch) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "\"batch\": missing integer %S" f
  in
  let* () = int_field "jobs" in
  let* () = int_field "groups" in
  let* () =
    match Option.bind (Util.Json.member "runs" batch) Util.Json.to_list with
    | None -> fail "\"batch\": missing \"runs\" array"
    | Some runs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_batch_run i r) (fun () -> go (i + 1) rest)
        in
        go 0 runs
  in
  match Util.Json.member "metrics" j with
  | Some m ->
      let* () = validate_registry m in
      (* The resume/shard journal shows up as registry.* counters; a
         batch artifact without them means the bench stopped exercising
         the journaling path. *)
      let counter name =
        match Util.Json.member name m with
        | Some v -> validate_metric name v
        | None -> fail "batch metrics lack the %S counter" name
      in
      let* () = counter "registry.replays" in
      let* () = counter "registry.writes" in
      counter "registry.corrupt"
  | None -> fail "batch file lacks the \"metrics\" object"

let validate_transient_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "transient record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some _ -> Ok ()
    | None -> fail "transient record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* () = int_field "nodes" in
  let* () = int_field "order" in
  let* () = int_field "steps" in
  let* () = int_field "domains" in
  let* () = int_field "reps" in
  let* () = int_field "pcg_iters" in
  let* () = float_field "step_s" in
  let* () = float_field "factor_s" in
  let* () =
    match Util.Json.member "warm_start" r with
    | Some (Util.Json.Bool _) -> Ok ()
    | _ -> fail "transient record %d: missing boolean \"warm_start\"" i
  in
  match Option.bind (Util.Json.member "solver" r) Util.Json.to_string with
  | Some ("direct" | "pcg") -> Ok ()
  | Some s -> fail "transient record %d: unknown solver %S" i s
  | None -> fail "transient record %d: missing string \"solver\"" i

let validate_transient (j : Util.Json.t) transient =
  let ( let* ) = Result.bind in
  let int_field f =
    match Option.bind (Util.Json.member f transient) Util.Json.to_int with
    | Some _ -> Ok ()
    | None -> fail "\"transient\": missing integer %S" f
  in
  let* () = int_field "cores" in
  let* () = int_field "pool_workers" in
  let* () =
    match Util.Json.member "pool" transient with
    | Some pool -> (
        match
          ( Option.bind (Util.Json.member "dispatches" pool) Util.Json.to_int,
            Option.bind (Util.Json.member "per_dispatch_ns" pool) Util.Json.to_float )
        with
        | Some _, Some _ -> Ok ()
        | _ -> fail "\"transient\".\"pool\": needs \"dispatches\" and \"per_dispatch_ns\"")
    | None -> fail "\"transient\": missing \"pool\" object"
  in
  let* () =
    match Option.bind (Util.Json.member "records" transient) Util.Json.to_list with
    | None -> fail "\"transient\": missing \"records\" array"
    | Some [] -> fail "\"transient\": empty \"records\" array"
    | Some rs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_transient_record i r) (fun () -> go (i + 1) rest)
        in
        go 0 rs
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "transient file lacks the \"metrics\" object"

let validate_st_record i (r : Util.Json.t) =
  let int_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_int with
    | Some v -> Ok v
    | None -> fail "st record %d: missing integer %S" i f
  in
  let float_field f =
    match Option.bind (Util.Json.member f r) Util.Json.to_float with
    | Some v -> Ok v
    | None -> fail "st record %d: missing number %S" i f
  in
  let ( let* ) = Result.bind in
  let* _ = int_field "order" in
  let* basis = int_field "basis" in
  let* points = int_field "points" in
  let* () =
    if points = basis then Ok ()
    else fail "st record %d: %d testing points for a %d-term basis" i points basis
  in
  let* _ = int_field "refine_sweeps" in
  let* _ = int_field "refine_fallbacks" in
  let* _ = int_field "pcg_iters" in
  let* _ = float_field "st_factor_s" in
  let* _ = float_field "st_step_s" in
  let* _ = float_field "st_total_s" in
  let* _ = float_field "pcg_total_s" in
  let* _ = float_field "direct_total_s" in
  let* _ = float_field "speedup_vs_pcg" in
  (* The moment-drift bounds st_bench enforces at generation time are
     re-checked here, so a hand-edited or stale artifact cannot claim
     agreement the numbers do not show. *)
  let* mean_drift = float_field "mean_drift" in
  let* () =
    if mean_drift <= 5e-4 then Ok ()
    else fail "st record %d: mean_drift %g exceeds the 5e-4 V bound" i mean_drift
  in
  let* sdrift = float_field "std_drift_rel" in
  if sdrift <= 0.08 then Ok ()
  else fail "st record %d: std_drift_rel %g exceeds the 8%% bound" i sdrift

let validate_st (j : Util.Json.t) st =
  let ( let* ) = Result.bind in
  let int_field f =
    match Option.bind (Util.Json.member f st) Util.Json.to_int with
    | Some v -> Ok v
    | None -> fail "\"st\": missing integer %S" f
  in
  let* _ = int_field "nodes" in
  let* _ = int_field "steps" in
  let* crossover = int_field "crossover_order" in
  let* () =
    if crossover >= -1 then Ok ()
    else fail "\"st\": crossover_order %d is not an order or the -1 sentinel" crossover
  in
  let* () =
    match Option.bind (Util.Json.member "records" st) Util.Json.to_list with
    | None -> fail "\"st\": missing \"records\" array"
    | Some [] -> fail "\"st\": empty \"records\" array"
    | Some rs ->
        let rec go i = function
          | [] -> Ok ()
          | r :: rest -> Result.bind (validate_st_record i r) (fun () -> go (i + 1) rest)
        in
        go 0 rs
  in
  match Util.Json.member "metrics" j with
  | Some m -> validate_registry m
  | None -> fail "st file lacks the \"metrics\" object"

let validate_file path =
  match Util.Json.parse_file path with
  | Error e -> fail "%s: JSON parse error: %s" path e
  | Ok j -> (
      let tag = Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) in
      match
        ( Util.Json.member "records" j,
          Util.Json.member "batch" j,
          Util.Json.member "transient" j,
          Util.Json.member "st" j )
      with
      | Some records, _, _, _ -> tag (validate_bench j records)
      | None, Some batch, _, _ -> tag (validate_batch j batch)
      | None, None, Some transient, _ -> tag (validate_transient j transient)
      | None, None, None, Some st -> tag (validate_st j st)
      | None, None, None, None -> tag (validate_registry j))

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: validate_metrics FILE.json [FILE.json ...]";
    exit 2
  end;
  let failures =
    List.filter_map
      (fun path ->
        match validate_file path with
        | Ok () ->
            Printf.printf "%s: ok\n" path;
            None
        | Error e ->
            Printf.eprintf "%s\n" e;
            Some path)
      files
  in
  if failures <> [] then exit 1
