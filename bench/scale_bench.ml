(* Million-node scaling bench: streaming assembly + AMG mean-block
   preconditioning.

   For each grid size the MNA system is assembled through the streaming
   path (Grid_gen.stream_mna — CSC built directly from stamp emission,
   no triplet lists), then the mean conductance block is solved with
   AMG-preconditioned CG and, up to 2e5 nodes, IC(0)-preconditioned CG
   for contrast.  At the flagship size the AMG setup state is round-
   tripped through the v2 artifact store twice to show a warm replay is
   a mapped load, not a decode.  Writes BENCH_scale.json:

     { "scale": { "sizes": [...],
         "records": [
           { "nodes": N, "assemble_s": ..., "stream_stamps": ...,
             "stream_nnz": ..., "stream_bytes": ..., "bytes_per_node": ...,
             "heap_mb": ...,
             "solves": [
               { "precond": "amg"|"ic0", "setup_s": ..., "solve_s": ...,
                 "iters": ..., "stored_nnz": ... }, ... ] }, ... ],
         "replay": { "nodes": N, "map_hits": ..., "full_decodes": ... } },
       "metrics": { ... } }

   validated by validate_metrics.exe (the `make bench-scale` target).
   The bench *asserts* the scaling contracts — streaming-assembly
   scratch stays under 320 bytes/node at every size (the triplet path
   burns kilobytes per stamp in list cells), AMG-PCG iterations stay
   within 2x across a 10x size jump where IC(0) iterations keep
   climbing, AMG beats IC(0) on solve wall-clock at 1e5 nodes (the
   recurring cost — setup runs once per operator group and amortizes
   over the transient), every solve converges, and the warm artifact
   replay performs zero full decodes —
   so a scaling regression fails the target rather than just skewing
   the numbers. *)

let sizes = ref [ 10_000; 100_000; 1_000_000 ]
let quick = ref false
let reps = ref 1
let out_file = ref "BENCH_scale.json"
let cache_dir = ref "_bench_scale_cache"

(* IC(0) iteration counts grow with mesh diameter; past this size the
   contrast run costs minutes without adding information. *)
let ic0_cutoff = 200_000

(* Streaming-assembly scratch budget, bytes per node: ~11 stamps/node at
   16 bytes plus two column counters per of_stamps pass. *)
let bytes_per_node_bound = 320.0

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("scale_bench: " ^ s); exit 1) fmt

type solve = {
  precond : string;
  setup_s : float;
  solve_s : float;
  iters : int;
  stored_nnz : int;
}

type record = {
  nodes : int;
  assemble_s : float;
  stream_stamps : int;
  stream_nnz : int;
  stream_bytes : int;
  heap_mb : float;
  solves : solve list;
}

let best_of f =
  let best = ref infinity and keep = ref None in
  for _ = 1 to Int.max 1 !reps do
    let t0 = Util.Timer.start () in
    let r = f () in
    let elapsed = Util.Timer.elapsed_s t0 in
    if elapsed < !best then begin
      best := elapsed;
      keep := Some r
    end
  done;
  (Option.get !keep, !best)

let run_solve ~label ~kind g b =
  let n = Array.length b in
  let precond, setup_s = best_of (fun () -> Linalg.Precond.make kind g) in
  let (x, stats), solve_s =
    best_of (fun () ->
        Linalg.Cg.solve
          ~precond:(Linalg.Precond.as_cg_preconditioner precond)
          ~tol:1e-8 ~max_iter:5000
          ~matvec:(Linalg.Sparse.mul_vec g)
          ~b ~x0:(Array.make n 0.0) ())
  in
  ignore x;
  if not stats.Linalg.Cg.converged then
    die "%d nodes: %s-pcg did not converge in %d iterations (residual %.3e)" n label
      stats.Linalg.Cg.iterations stats.Linalg.Cg.residual_norm;
  Printf.printf "  %s-pcg %4d iters  setup_s=%.3f solve_s=%.3f\n%!" label
    stats.Linalg.Cg.iterations setup_s solve_s;
  {
    precond = label;
    setup_s;
    solve_s;
    iters = stats.Linalg.Cg.iterations;
    stored_nnz = Linalg.Precond.stored_nnz precond;
  }

let bench_size n =
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default n in
  (* A fresh registry per repetition: the stream counters are a
     per-assembly fact, not something to accumulate across reps. *)
  let (mna, metrics), assemble_s =
    best_of (fun () ->
        let metrics = Util.Metrics.create () in
        (Powergrid.Grid_gen.stream_mna ~metrics spec, metrics))
  in
  let nodes = mna.Powergrid.Mna.n in
  let stream_stamps = Util.Metrics.counter metrics "sparse.stream_stamps" in
  let stream_nnz = Util.Metrics.counter metrics "sparse.stream_nnz" in
  let stream_bytes = int_of_float (Util.Metrics.total metrics "sparse.stream_peak_bytes") in
  let heap_mb = float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * 8) /. 1048576.0 in
  Printf.printf "%d nodes: assemble_s=%.3f stamps=%d nnz=%d scratch=%.1f B/node heap=%.0f MB\n%!"
    nodes assemble_s stream_stamps stream_nnz
    (float_of_int stream_bytes /. float_of_int nodes)
    heap_mb;
  let bytes_per_node = float_of_int stream_bytes /. float_of_int nodes in
  if bytes_per_node > bytes_per_node_bound then
    die "%d nodes: streaming scratch %.0f B/node exceeds the %.0f B/node budget" nodes
      bytes_per_node bytes_per_node_bound;
  let g = Powergrid.Mna.g_total mna in
  let b = mna.Powergrid.Mna.u_pad in
  let solves =
    run_solve ~label:"amg" ~kind:Linalg.Precond.Amg g b
    :: (if nodes <= ic0_cutoff then [ run_solve ~label:"ic0" ~kind:Linalg.Precond.Ic0 g b ]
        else [])
  in
  ({ nodes; assemble_s; stream_stamps; stream_nnz; stream_bytes; heap_mb; solves }, g)

let amg_of r =
  match List.find_opt (fun s -> s.precond = "amg") r.solves with
  | Some s -> s
  | None -> die "%d nodes: no amg solve recorded" r.nodes

(* Warm replay of the AMG setup artifact: the second lookup must be a
   mapped load of the stored hierarchy, not a decode of its bytes. *)
let bench_replay g nodes =
  let metrics = Util.Metrics.create () in
  let store = Scenario.Store.create ~metrics ~dir:(Some !cache_dir) () in
  let key = Scenario.Store.key_of_bytes (Printf.sprintf "scale-amg-%d" nodes) in
  let lookup () =
    Scenario.Store.find_or_build_sections store ~kind:Linalg.Amg.artifact_kind
      ~version:Linalg.Amg.artifact_version ~key ~encode:Linalg.Amg.to_frame
      ~decode:Linalg.Amg.of_frame_sections
      ~build:(fun () -> Linalg.Amg.build g)
  in
  let cold = lookup () in
  let _, warm_s = best_of (fun () -> lookup ()) in
  ignore cold;
  let map_hits = Util.Metrics.counter metrics "store.map_hits" in
  let full_decodes = Util.Metrics.counter metrics "store.full_decodes" in
  Printf.printf "replay %d nodes: warm_s=%.4f map_hits=%d full_decodes=%d\n%!" nodes warm_s
    map_hits full_decodes;
  if full_decodes > 0 then
    die "warm replay decoded %d artifact(s) instead of mapping them" full_decodes;
  if map_hits < 1 then die "warm replay never hit the mapped artifact";
  (map_hits, full_decodes)

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        sizes := [ 2_000; 10_000 ];
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := v;
        parse rest
    | "--cache-dir" :: v :: rest ->
        cache_dir := v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "scale_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = List.map bench_size !sizes in
  let records = List.map fst results in
  (* AMG-PCG iteration counts must stay roughly flat across the sweep
     while IC(0)'s climb with the mesh diameter. *)
  (match records with
  | first :: (_ :: _ as rest) ->
      let base = (amg_of first).iters in
      List.iter
        (fun r ->
          let it = (amg_of r).iters in
          if it > 2 * base then
            die "amg iterations not flat: %d at %d nodes vs %d at %d nodes" it r.nodes base
              first.nodes)
        rest
  | _ -> ());
  (* The recurring cost is the solve: setup runs once per operator
     group and amortizes over every transient step and chaos block, so
     the flagship contract is on solve wall-clock, not setup+solve. *)
  if not !quick then
    List.iter
      (fun r ->
        match List.find_opt (fun s -> s.precond = "ic0") r.solves with
        | Some ic0 when r.nodes >= 100_000 ->
            let amg = amg_of r in
            if amg.solve_s >= ic0.solve_s then
              die "%d nodes: amg solve (%.3fs) did not beat ic0 solve (%.3fs)" r.nodes
                amg.solve_s ic0.solve_s
        | _ -> ())
      records;
  (* Replay at the largest size that still ran both preconditioners —
     the flagship 1e5 grid on the full sweep. *)
  let replay_record, replay_g =
    List.fold_left
      (fun acc (r, g) -> if r.nodes <= ic0_cutoff then (r, g) else acc)
      (List.hd results) results
  in
  let map_hits, full_decodes = bench_replay replay_g replay_record.nodes in
  let num v = Util.Json.Num v in
  let solve_json s =
    Util.Json.Obj
      [
        ("precond", Util.Json.Str s.precond);
        ("setup_s", num s.setup_s);
        ("solve_s", num s.solve_s);
        ("iters", num (float_of_int s.iters));
        ("stored_nnz", num (float_of_int s.stored_nnz));
      ]
  in
  let record_json r =
    Util.Json.Obj
      [
        ("nodes", num (float_of_int r.nodes));
        ("assemble_s", num r.assemble_s);
        ("stream_stamps", num (float_of_int r.stream_stamps));
        ("stream_nnz", num (float_of_int r.stream_nnz));
        ("stream_bytes", num (float_of_int r.stream_bytes));
        ("bytes_per_node", num (float_of_int r.stream_bytes /. float_of_int r.nodes));
        ("heap_mb", num r.heap_mb);
        ("solves", Util.Json.List (List.map solve_json r.solves));
      ]
  in
  let metrics =
    match Util.Json.parse (Util.Metrics.to_json Util.Metrics.global) with
    | Ok j -> j
    | Error e -> die "metrics registry is not valid JSON: %s" e
  in
  let doc =
    Util.Json.Obj
      [
        ( "scale",
          Util.Json.Obj
            [
              ("sizes", Util.Json.List (List.map (fun n -> num (float_of_int n)) !sizes));
              ("records", Util.Json.List (List.map record_json records));
              ( "replay",
                Util.Json.Obj
                  [
                    ("nodes", num (float_of_int replay_record.nodes));
                    ("map_hits", num (float_of_int map_hits));
                    ("full_decodes", num (float_of_int full_decodes));
                  ] );
            ] );
        ("metrics", metrics);
      ]
  in
  let oc = open_out !out_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Util.Json.render doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out_file
