(* Analysis-service throughput bench: an in-process `opera serve`
   daemon, exercised over its Unix-domain socket exactly the way a
   production client would.

   One flagship mixed batch (the batch_bench workload) is submitted

     cold         once, on an empty cache (factors built, results
                  journaled)
     warm         REPEAT times from one client (pure registry replay)
     concurrent   CLIENTS client domains x REPEAT submissions each,
                  interleaved through the admission queue

   and the bench asserts the service contract rather than just timing
   it: every response must be byte-identical to the cold run's record
   stream, warm submissions must perform zero factorizations and zero
   solves (engine.factorizations over the socket's stats op must not
   move after the cold run), nothing may be rejected, and warm
   throughput must beat cold by at least 5x.

   BENCH_service.json:

     { "service": {
         "jobs": J, "clients": C,
         "runs": [ { "label": "cold"|"warm"|"concurrent",
                     "requests": R, "elapsed_s": S, "jobs_per_s": T,
                     "replayed": P }, ... ],
         "warm_speedup": X,
         "factorizations": { "cold": F, "warm": 0 },
         "latency": { "count": N, "p50_s": A, "p99_s": B } },
       "metrics": { ... } }

   validated by validate_metrics.exe (the `make bench-service` target,
   and `make ci` in --quick mode). *)

let nodes = ref 600
let steps = ref 6
let clients = ref 4
let repeat = ref 3
let out_file = ref "BENCH_service.json"

let sock_path = "_bench_service.sock"
let cache_dir = "_bench_service_cache"

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("service_bench: " ^ msg); exit 1) fmt

(* The batch_bench flagship workload: transient corners sharing one
   operator plus special-case leakage corners. *)
let transient_job name drain_scale =
  {
    Scenario.Job.name;
    source = Scenario.Job.Generated { nodes = !nodes };
    analysis = Scenario.Job.Transient;
    order = 2;
    h = 125e-12;
    steps = !steps;
    solver = Opera.Galerkin.Direct;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale;
    leak_scale = 1.0;
    probe = None;
  }

let special_job name leak_scale =
  {
    (transient_job name 1.0) with
    Scenario.Job.analysis = Scenario.Job.Special { regions = 4; lambda = 0.5 };
    leak_scale;
  }

let batch_doc () =
  (* Submissions travel as the JOBS.json document they would live in on
     disk, through Job's own JSON vocabulary. *)
  let job_json (j : Scenario.Job.t) =
    let fields =
      [
        ("name", Util.Json.Str j.name);
        ("nodes", Util.Json.Num (float_of_int !nodes));
        ("order", Util.Json.Num (float_of_int j.order));
        ("solver", Util.Json.Str "direct");
        ("drain_scale", Util.Json.Num j.drain_scale);
        ("leak_scale", Util.Json.Num j.leak_scale);
      ]
    in
    match j.analysis with
    | Scenario.Job.Special { regions; lambda } ->
        Util.Json.Obj
          (fields
          @ [
              ("analysis", Util.Json.Str "special");
              ("regions", Util.Json.Num (float_of_int regions));
              ("lambda", Util.Json.Num lambda);
            ])
    | _ ->
        Util.Json.Obj
          (fields
          @ [
              ("analysis", Util.Json.Str "transient");
              ("step_ps", Util.Json.Num (j.h *. 1e12));
              ("steps", Util.Json.Num (float_of_int j.steps));
            ])
  in
  let jobs =
    Array.append
      (Array.init 6 (fun i ->
           transient_job (Printf.sprintf "tr%d" i) (0.8 +. (0.1 *. float_of_int i))))
      (Array.init 4 (fun i -> special_job (Printf.sprintf "sp%d" i) (0.7 +. (0.2 *. float_of_int i))))
  in
  ( Array.length jobs,
    Util.Json.Obj [ ("jobs", Util.Json.List (Array.to_list (Array.map job_json jobs))) ] )

let clear_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)

(* ---- socket client ---------------------------------------------------- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
  | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
      Unix.close fd;
      raise e

let disconnect c =
  flush c.oc;
  Unix.close c.fd

let is_terminator json =
  match json with
  | Ok j ->
      Util.Json.member "done" j <> None
      || Util.Json.member "error" j <> None
      || Util.Json.member "pong" j <> None
      || Util.Json.member "stats" j <> None
      || Util.Json.member "ok" j <> None
  | Error _ -> true

(* Send one request line; read lines until the terminator object.
   Returns (record lines in order, terminator line). *)
let rpc c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  let rec go acc =
    let l = input_line c.ic in
    if is_terminator (Util.Json.parse l) then (List.rev acc, l) else go (l :: acc)
  in
  go []

let submit c batch_line ~expect_jobs ~expect_stream =
  let t = Util.Timer.start () in
  let records, terminator = rpc c batch_line in
  let dt = Util.Timer.elapsed_s t in
  (match Util.Json.parse terminator with
  | Ok j when Util.Json.member "done" j <> None -> (
      match Util.Json.member "jobs" j with
      | Some (Util.Json.Num n) when int_of_float n = expect_jobs -> ()
      | _ -> die "done line reports wrong job count: %s" terminator)
  | _ -> die "batch ended with %s" terminator);
  let stream = String.concat "\n" records in
  (match expect_stream with
  | Some expected when stream <> expected -> die "response stream differs from the cold run"
  | _ -> ());
  (stream, dt)

let counter_of stats name =
  match Util.Json.member name stats with
  | Some j -> (
      match Util.Json.member "value" j with
      | Some (Util.Json.Num v) -> int_of_float v
      | _ -> 0)
  | None -> 0

let stats_snapshot c =
  let _, line = rpc c {|{"op":"stats"}|} in
  match Util.Json.parse line with
  | Ok j -> (
      match Util.Json.member "stats" j with
      | Some stats -> stats
      | None -> die "stats response missing \"stats\": %s" line)
  | Error e -> die "stats response unparsable: %s" e

(* ---- percentiles ------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

(* ---- the bench -------------------------------------------------------- *)

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        nodes := 240;
        steps := 4;
        clients := 2;
        repeat := 2;
        parse rest
    | "--nodes" :: v :: rest ->
        nodes := int_of_string v;
        parse rest
    | "--steps" :: v :: rest ->
        steps := int_of_string v;
        parse rest
    | "--clients" :: v :: rest ->
        clients := int_of_string v;
        parse rest
    | "--repeat" :: v :: rest ->
        repeat := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "service_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  clear_dir cache_dir;
  if Sys.file_exists sock_path then Sys.remove sock_path;
  let njobs, doc = batch_doc () in
  let batch_line =
    Util.Json.render (Util.Json.Obj [ ("op", Util.Json.Str "batch"); ("batch", doc) ])
  in
  let config =
    {
      Service.Server.default_config with
      Service.Server.listen = sock_path;
      cache_dir = Some cache_dir;
      queue_capacity = max 16 (!clients * !repeat * 2);
      jobs_parallel = 1;
      domains = 1;
      handle_signals = false;
    }
  in
  let server = Domain.spawn (fun () -> Service.Server.run config) in
  let deadline = 100 in
  let rec await n =
    if Sys.file_exists sock_path then ()
    else if n = 0 then die "server did not bind %s" sock_path
    else begin
      Unix.sleepf 0.1;
      await (n - 1)
    end
  in
  await deadline;

  (* cold: first submission on an empty cache *)
  let c = connect () in
  let cold_stream, cold_s = submit c batch_line ~expect_jobs:njobs ~expect_stream:None in
  let f_cold = counter_of (stats_snapshot c) "engine.factorizations" in
  if f_cold <= 0 then die "cold run factored nothing";
  Printf.printf "%-11s %d jobs  %.3f s  %.1f jobs/s  (%d factorizations)\n%!" "cold" njobs
    cold_s
    (float_of_int njobs /. cold_s)
    f_cold;

  (* warm: sequential resubmissions, pure registry replay *)
  let latencies = ref [] in
  let warm_t = Util.Timer.start () in
  for _ = 1 to !repeat do
    let _, dt = submit c batch_line ~expect_jobs:njobs ~expect_stream:(Some cold_stream) in
    latencies := dt :: !latencies
  done;
  let warm_s = Util.Timer.elapsed_s warm_t in
  let f_warm = counter_of (stats_snapshot c) "engine.factorizations" - f_cold in
  if f_warm <> 0 then die "warm submissions factored %d times" f_warm;
  Printf.printf "%-11s %d requests  %.3f s  %.1f jobs/s\n%!" "warm" !repeat warm_s
    (float_of_int (njobs * !repeat) /. warm_s);

  (* concurrent: CLIENTS domains x REPEAT submissions each *)
  let conc_t = Util.Timer.start () in
  let workers =
    Array.init !clients (fun _ ->
        Domain.spawn (fun () ->
            let c = connect () in
            let lats =
              List.init !repeat (fun _ ->
                  let _, dt =
                    submit c batch_line ~expect_jobs:njobs ~expect_stream:(Some cold_stream)
                  in
                  dt)
            in
            disconnect c;
            lats))
  in
  let conc_lats = Array.to_list workers |> List.concat_map Domain.join in
  let conc_s = Util.Timer.elapsed_s conc_t in
  let conc_requests = !clients * !repeat in
  Printf.printf "%-11s %d clients x %d  %.3f s  %.1f jobs/s sustained\n%!" "concurrent" !clients
    !repeat conc_s
    (float_of_int (njobs * conc_requests) /. conc_s);

  (* contract checks over the stats op *)
  let stats = stats_snapshot c in
  let f_total = counter_of stats "engine.factorizations" in
  if f_total <> f_cold then
    die "concurrent submissions factored %d times" (f_total - f_cold);
  let rejects = counter_of stats "service.rejects" in
  if rejects <> 0 then die "%d submissions were rejected (queue sized for the load)" rejects;
  let requests = counter_of stats "service.requests" in
  let expect_requests = 1 + !repeat + conc_requests in
  if requests <> expect_requests then
    die "service.requests = %d, expected %d" requests expect_requests;
  let replays = counter_of stats "service.replays" in
  let expect_replays = njobs * (!repeat + conc_requests) in
  if replays <> expect_replays then
    die "service.replays = %d, expected %d" replays expect_replays;

  (* shutdown and collect the server's own metrics registry *)
  let _, ack = rpc c {|{"op":"shutdown"}|} in
  (match Util.Json.parse ack with
  | Ok j when Util.Json.member "ok" j <> None -> ()
  | _ -> die "shutdown not acknowledged: %s" ack);
  disconnect c;
  Domain.join server;
  if Sys.file_exists sock_path then die "socket file survived shutdown";

  let all_lats = Array.of_list (!latencies @ conc_lats) in
  Array.sort compare all_lats;
  let p50 = percentile all_lats 0.50 and p99 = percentile all_lats 0.99 in
  let cold_rate = float_of_int njobs /. cold_s in
  let warm_rate = float_of_int (njobs * !repeat) /. warm_s in
  let speedup = warm_rate /. cold_rate in
  if speedup < 5.0 then
    die "warm throughput only %.1fx cold (contract: >= 5x; registry replay is broken)" speedup;
  Printf.printf "warm speedup %.1fx cold;  latency p50 %.4f s  p99 %.4f s\n%!" speedup p50 p99;

  let run_json label requests elapsed replayed =
    Util.Json.Obj
      [
        ("label", Util.Json.Str label);
        ("requests", Util.Json.Num (float_of_int requests));
        ("elapsed_s", Util.Json.Num elapsed);
        ( "jobs_per_s",
          Util.Json.Num
            (if elapsed > 0.0 then float_of_int (njobs * requests) /. elapsed else 0.0) );
        ("replayed", Util.Json.Num (float_of_int replayed));
      ]
  in
  let metrics =
    match Util.Json.parse (Util.Metrics.to_json Util.Metrics.global) with
    | Ok j -> j
    | Error e -> die "metrics registry is not valid JSON: %s" e
  in
  let doc =
    Util.Json.Obj
      [
        ( "service",
          Util.Json.Obj
            [
              ("jobs", Util.Json.Num (float_of_int njobs));
              ("clients", Util.Json.Num (float_of_int !clients));
              ( "runs",
                Util.Json.List
                  [
                    run_json "cold" 1 cold_s 0;
                    run_json "warm" !repeat warm_s (njobs * !repeat);
                    run_json "concurrent" conc_requests conc_s (njobs * conc_requests);
                  ] );
              ("warm_speedup", Util.Json.Num speedup);
              ( "factorizations",
                Util.Json.Obj
                  [
                    ("cold", Util.Json.Num (float_of_int f_cold));
                    ("warm", Util.Json.Num (float_of_int f_warm));
                  ] );
              ( "latency",
                Util.Json.Obj
                  [
                    ("count", Util.Json.Num (float_of_int (Array.length all_lats)));
                    ("p50_s", Util.Json.Num p50);
                    ("p99_s", Util.Json.Num p99);
                  ] );
            ] );
        ("metrics", metrics);
      ]
  in
  let oc = open_out !out_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Util.Json.render doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out_file
