(* Batch-engine throughput + crash-safety bench.

   Runs one mixed batch (transient excitation corners sharing a single
   Galerkin operator, plus special-case leakage corners sharing one
   deterministic factor pair) four times against one artifact store:

     cold   jobs_parallel=1   (factors built and written)
     warm   jobs_parallel=1   (factors read back, zero factorizations)
     warm   jobs_parallel=2
     warm   jobs_parallel=4

   then exercises the crash-safety machinery on fresh stores:

     resume      kill the batch mid-stream (the emit callback raises
                 after KILL_AFTER records), then rerun with --resume
                 semantics: the replayed+executed stream must be
                 byte-identical to the uninterrupted one, with zero
                 factorizations (everything was cached before the kill)
     shard-i/2   run shards 0/2 and 1/2 against one shared store: the
                 two streams must partition the cold stream exactly
                 (every job once, nothing twice) and together factor no
                 more than one cold run does

   and writes BENCH_batch.json:

     { "batch": { "jobs": J, "groups": G, "runs": [
         { "label": "cold", "jobs_parallel": 1, "factorizations": F,
           "cache_hits": H, "cache_misses": M, "replayed": P,
           "journaled": W, "elapsed_s": S, "jobs_per_s": R }, ... ] },
       "metrics": { ... } }

   validated by validate_metrics.exe (the `make bench-batch` target,
   and `make ci` in --quick mode).  Every guarantee above is asserted,
   so a caching/journaling regression fails the target rather than just
   skewing the numbers. *)

let nodes = ref 600
let steps = ref 6
let out_file = ref "BENCH_batch.json"

let transient_job name drain_scale =
  {
    Scenario.Job.name;
    source = Scenario.Job.Generated { nodes = !nodes };
    analysis = Scenario.Job.Transient;
    order = 2;
    h = 125e-12;
    steps = !steps;
    solver = Opera.Galerkin.Direct;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale;
    leak_scale = 1.0;
    probe = None;
  }

let special_job name leak_scale =
  {
    (transient_job name 1.0) with
    Scenario.Job.analysis = Scenario.Job.Special { regions = 4; lambda = 0.5 };
    leak_scale;
  }

let batch () =
  Array.append
    (Array.init 6 (fun i -> transient_job (Printf.sprintf "tr%d" i) (0.8 +. (0.1 *. float_of_int i))))
    (Array.init 4 (fun i -> special_job (Printf.sprintf "sp%d" i) (0.7 +. (0.2 *. float_of_int i))))

let clear_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)

let jsonl_of results =
  String.concat "\n"
    (Array.to_list (Array.map (fun r -> Util.Json.render r.Scenario.Engine.record) results))

let config ~cache_dir ~jobs_parallel ?(resume = false) ?shard () =
  {
    Scenario.Engine.cache_dir = Some cache_dir;
    jobs_parallel;
    domains = 1;
    metrics = Util.Metrics.global;
    warm_start = true;
    precond = Linalg.Precond.Cholesky;
    resume;
    shard;
  }

let run_once ~label ~cache_dir ~jobs_parallel ?resume ?shard jobs =
  let config = config ~cache_dir ~jobs_parallel ?resume ?shard () in
  let results, summary = Scenario.Engine.run ~config jobs in
  Printf.printf "%-9s jobs_parallel=%d  %s\n%!" label jobs_parallel
    (Scenario.Engine.summary_line summary);
  (summary, jsonl_of results)

let run_json ~label ~jobs_parallel (s : Scenario.Engine.summary) =
  Util.Json.Obj
    [
      ("label", Util.Json.Str label);
      ("jobs_parallel", Util.Json.Num (float_of_int jobs_parallel));
      ("factorizations", Util.Json.Num (float_of_int s.Scenario.Engine.factorizations));
      ("cache_hits", Util.Json.Num (float_of_int s.Scenario.Engine.cache_hits));
      ("cache_misses", Util.Json.Num (float_of_int s.Scenario.Engine.cache_misses));
      ("replayed", Util.Json.Num (float_of_int s.Scenario.Engine.replayed));
      ("journaled", Util.Json.Num (float_of_int s.Scenario.Engine.journaled));
      ("elapsed_s", Util.Json.Num s.Scenario.Engine.elapsed_seconds);
      ( "jobs_per_s",
        Util.Json.Num
          (if s.Scenario.Engine.elapsed_seconds > 0.0 then
             float_of_int s.Scenario.Engine.jobs /. s.Scenario.Engine.elapsed_seconds
           else 0.0) );
    ]

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("batch_bench: " ^ msg); exit 1) fmt

exception Killed

(* Simulated crash: the stream consumer dies after [kill_after] records.
   Returns the prefix that made it out before the kill. *)
let killed_run ~cache_dir ~kill_after jobs =
  let buf = Buffer.create 1024 in
  let emitted = ref 0 in
  let emit (r : Scenario.Engine.result) =
    incr emitted;
    if !emitted > kill_after then raise Killed;
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf (Util.Json.render r.Scenario.Engine.record)
  in
  match Scenario.Engine.run ~config:(config ~cache_dir ~jobs_parallel:1 ()) ~emit jobs with
  | _ -> die "killed run was not killed (emit callback never fired %d times)" (kill_after + 1)
  | exception Killed ->
      Printf.printf "%-9s jobs_parallel=1  killed after %d streamed record(s)\n%!" "killed"
        kill_after;
      Buffer.contents buf

let resume_scenario ~cold_stream jobs =
  let cache_dir = "_bench_batch_resume" in
  clear_dir cache_dir;
  let kill_after = 3 in
  let prefix = killed_run ~cache_dir ~kill_after jobs in
  let cold_lines = String.split_on_char '\n' cold_stream in
  let expected_prefix =
    String.concat "\n" (List.filteri (fun i _ -> i < kill_after) cold_lines)
  in
  if prefix <> expected_prefix then
    die "killed run streamed something other than the first %d records" kill_after;
  let s, stream =
    run_once ~label:"resume" ~cache_dir ~jobs_parallel:1 ~resume:true jobs
  in
  if stream <> cold_stream then die "resumed run's JSONL differs from the uninterrupted stream";
  if s.Scenario.Engine.factorizations <> 0 then
    die "resumed run factored %d times (the killed run cached every factor)"
      s.Scenario.Engine.factorizations;
  if s.Scenario.Engine.replayed < kill_after then
    die "resumed run replayed %d jobs; the killed run journaled at least %d"
      s.Scenario.Engine.replayed kill_after;
  if s.Scenario.Engine.replayed + s.Scenario.Engine.journaled <> Array.length jobs then
    die "resume accounting: %d replayed + %d journaled <> %d jobs" s.Scenario.Engine.replayed
      s.Scenario.Engine.journaled (Array.length jobs);
  s

let shard_scenario ~cold_stream ~cold_factorizations jobs =
  let cache_dir = "_bench_batch_shard" in
  clear_dir cache_dir;
  let cold_lines = Array.of_list (String.split_on_char '\n' cold_stream) in
  let njobs = Array.length jobs in
  if Array.length cold_lines <> njobs then die "cold stream has %d lines for %d jobs"
      (Array.length cold_lines) njobs;
  let shards = 2 in
  let runs =
    List.map
      (fun i ->
        let label = Printf.sprintf "shard-%d/%d" i shards in
        let s, stream = run_once ~label ~cache_dir ~jobs_parallel:1 ~shard:(i, shards) jobs in
        let expected =
          String.concat "\n"
            (List.filteri
               (fun idx _ -> Scenario.Engine.shard_of idx ~shards = i)
               (Array.to_list cold_lines))
        in
        if stream <> expected then
          die "%s streamed something other than its slice of the cold stream" label;
        (label, s))
      (List.init shards (fun i -> i))
  in
  (* Completeness + disjointness: the per-shard job counts partition the
     batch (each index hashes into exactly one shard), and the streams
     above matched disjoint slices of the cold stream. *)
  let covered = List.fold_left (fun acc (_, s) -> acc + s.Scenario.Engine.jobs) 0 runs in
  if covered <> njobs then die "shards covered %d of %d jobs" covered njobs;
  let factored =
    List.fold_left (fun acc (_, s) -> acc + s.Scenario.Engine.factorizations) 0 runs
  in
  (* Shared store, zero duplicated factorizations: the k runs together
     factor exactly what one cold run does. *)
  if factored <> cold_factorizations then
    die "2 shards factored %d times; one cold run factors %d" factored cold_factorizations;
  runs

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        nodes := 240;
        steps := 4;
        parse rest
    | "--nodes" :: v :: rest ->
        nodes := int_of_string v;
        parse rest
    | "--steps" :: v :: rest ->
        steps := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "batch_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = batch () in
  let cache_dir = "_bench_batch_cache" in
  clear_dir cache_dir;
  let cold, cold_stream = run_once ~label:"cold" ~cache_dir ~jobs_parallel:1 jobs in
  let runs =
    (("cold", 1), cold, cold_stream)
    :: List.map
         (fun jp ->
           let s, stream = run_once ~label:"warm" ~cache_dir ~jobs_parallel:jp jobs in
           (("warm", jp), s, stream))
         [ 1; 2; 4 ]
  in
  (* The engine's contract, enforced: warm runs factor nothing and every
     stream is byte-identical to the cold one. *)
  List.iter
    (fun ((label, jp), (s : Scenario.Engine.summary), stream) ->
      if label = "warm" && s.Scenario.Engine.factorizations <> 0 then begin
        Printf.eprintf "batch_bench: warm run (jobs_parallel=%d) factored %d times\n" jp
          s.Scenario.Engine.factorizations;
        exit 1
      end;
      if stream <> cold_stream then begin
        Printf.eprintf "batch_bench: %s run (jobs_parallel=%d) JSONL differs from cold stream\n"
          label jp;
        exit 1
      end)
    runs;
  let resume_summary = resume_scenario ~cold_stream jobs in
  let shard_runs =
    shard_scenario ~cold_stream ~cold_factorizations:cold.Scenario.Engine.factorizations jobs
  in
  let metrics =
    match Util.Json.parse (Util.Metrics.to_json Util.Metrics.global) with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "batch_bench: metrics registry is not valid JSON: %s\n" e;
        exit 1
  in
  let doc =
    Util.Json.Obj
      [
        ( "batch",
          Util.Json.Obj
            [
              ("jobs", Util.Json.Num (float_of_int (Array.length jobs)));
              ( "groups",
                Util.Json.Num (float_of_int (Array.length (Scenario.Engine.plan jobs))) );
              ( "runs",
                Util.Json.List
                  (List.map (fun ((label, jp), s, _) -> run_json ~label ~jobs_parallel:jp s) runs
                  @ [ run_json ~label:"resume" ~jobs_parallel:1 resume_summary ]
                  @ List.map
                      (fun (label, s) -> run_json ~label ~jobs_parallel:1 s)
                      shard_runs) );
            ] );
        ("metrics", metrics);
      ]
  in
  let oc = open_out !out_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Util.Json.render doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out_file
