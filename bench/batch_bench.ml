(* Batch-engine throughput bench.

   Runs one mixed batch (transient excitation corners sharing a single
   Galerkin operator, plus special-case leakage corners sharing one
   deterministic factor pair) four times against one artifact store:

     cold   jobs_parallel=1   (factors built and written)
     warm   jobs_parallel=1   (factors read back, zero factorizations)
     warm   jobs_parallel=2
     warm   jobs_parallel=4

   and writes BENCH_batch.json:

     { "batch": { "jobs": J, "groups": G, "runs": [
         { "label": "cold", "jobs_parallel": 1, "factorizations": F,
           "cache_hits": H, "cache_misses": M, "elapsed_s": S,
           "jobs_per_s": R }, ... ] },
       "metrics": { ... } }

   validated by validate_metrics.exe (the `make bench-batch` target).
   The bench also asserts the engine's core guarantees — warm runs
   factor nothing, and every run's JSONL is byte-identical — so a
   caching regression fails the target rather than just skewing the
   numbers. *)

let nodes = ref 600
let steps = ref 6
let out_file = ref "BENCH_batch.json"

let transient_job name drain_scale =
  {
    Scenario.Job.name;
    source = Scenario.Job.Generated { nodes = !nodes };
    analysis = Scenario.Job.Transient;
    order = 2;
    h = 125e-12;
    steps = !steps;
    solver = Opera.Galerkin.Direct;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale;
    leak_scale = 1.0;
    probe = None;
  }

let special_job name leak_scale =
  {
    (transient_job name 1.0) with
    Scenario.Job.analysis = Scenario.Job.Special { regions = 4; lambda = 0.5 };
    leak_scale;
  }

let batch () =
  Array.append
    (Array.init 6 (fun i -> transient_job (Printf.sprintf "tr%d" i) (0.8 +. (0.1 *. float_of_int i))))
    (Array.init 4 (fun i -> special_job (Printf.sprintf "sp%d" i) (0.7 +. (0.2 *. float_of_int i))))

let clear_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)

let jsonl_of results =
  String.concat "\n"
    (Array.to_list (Array.map (fun r -> Util.Json.render r.Scenario.Engine.record) results))

let run_once ~label ~cache_dir ~jobs_parallel jobs =
  let config =
    {
      Scenario.Engine.cache_dir = Some cache_dir;
      jobs_parallel;
      domains = 1;
      metrics = Util.Metrics.global;
      warm_start = true;
    }
  in
  let results, summary = Scenario.Engine.run ~config jobs in
  Printf.printf "%-6s jobs_parallel=%d  %s\n%!" label jobs_parallel
    (Scenario.Engine.summary_line summary);
  (summary, jsonl_of results)

let run_json ~label ~jobs_parallel (s : Scenario.Engine.summary) =
  Util.Json.Obj
    [
      ("label", Util.Json.Str label);
      ("jobs_parallel", Util.Json.Num (float_of_int jobs_parallel));
      ("factorizations", Util.Json.Num (float_of_int s.Scenario.Engine.factorizations));
      ("cache_hits", Util.Json.Num (float_of_int s.Scenario.Engine.cache_hits));
      ("cache_misses", Util.Json.Num (float_of_int s.Scenario.Engine.cache_misses));
      ("elapsed_s", Util.Json.Num s.Scenario.Engine.elapsed_seconds);
      ( "jobs_per_s",
        Util.Json.Num
          (if s.Scenario.Engine.elapsed_seconds > 0.0 then
             float_of_int s.Scenario.Engine.jobs /. s.Scenario.Engine.elapsed_seconds
           else 0.0) );
    ]

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        nodes := 240;
        steps := 4;
        parse rest
    | "--nodes" :: v :: rest ->
        nodes := int_of_string v;
        parse rest
    | "--steps" :: v :: rest ->
        steps := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "batch_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = batch () in
  let cache_dir = "_bench_batch_cache" in
  clear_dir cache_dir;
  let cold, cold_stream = run_once ~label:"cold" ~cache_dir ~jobs_parallel:1 jobs in
  let runs =
    (("cold", 1), cold, cold_stream)
    :: List.map
         (fun jp ->
           let s, stream = run_once ~label:"warm" ~cache_dir ~jobs_parallel:jp jobs in
           (("warm", jp), s, stream))
         [ 1; 2; 4 ]
  in
  (* The engine's contract, enforced: warm runs factor nothing and every
     stream is byte-identical to the cold one. *)
  List.iter
    (fun ((label, jp), (s : Scenario.Engine.summary), stream) ->
      if label = "warm" && s.Scenario.Engine.factorizations <> 0 then begin
        Printf.eprintf "batch_bench: warm run (jobs_parallel=%d) factored %d times\n" jp
          s.Scenario.Engine.factorizations;
        exit 1
      end;
      if stream <> cold_stream then begin
        Printf.eprintf "batch_bench: %s run (jobs_parallel=%d) JSONL differs from cold stream\n"
          label jp;
        exit 1
      end)
    runs;
  let metrics =
    match Util.Json.parse (Util.Metrics.to_json Util.Metrics.global) with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "batch_bench: metrics registry is not valid JSON: %s\n" e;
        exit 1
  in
  let doc =
    Util.Json.Obj
      [
        ( "batch",
          Util.Json.Obj
            [
              ("jobs", Util.Json.Num (float_of_int (Array.length jobs)));
              ( "groups",
                Util.Json.Num (float_of_int (Array.length (Scenario.Engine.plan jobs))) );
              ( "runs",
                Util.Json.List
                  (List.map (fun ((label, jp), s, _) -> run_json ~label ~jobs_parallel:jp s) runs)
              );
            ] );
        ("metrics", metrics);
      ]
  in
  let oc = open_out !out_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Util.Json.render doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out_file
