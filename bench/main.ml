(* Benchmark harness: regenerates every table and figure of
   "Stochastic Power Grid Analysis Considering Process Variations"
   (Ghanta et al., DATE 2005), plus the ablations called out in DESIGN.md.

   Subcommands (default: run everything at the default scale):

     table1            Table 1 — OPERA vs Monte Carlo on 7 grids
     figures           Figures 1 & 2 — voltage-drop histograms, MC vs OPERA
     special           Sec. 5.1 special case — leakage-only variation
     order-sweep       ablation: expansion order p = 1..4
     nvars-sweep       ablation: number of random variables r = 2..5
     solver-ablation   ablation: direct augmented factor vs mean-block PCG
     galerkin-op       perf: assembled vs matrix-free Galerkin operator
                       (writes BENCH_galerkin.json)
     linear-solvers    extension: Cholesky vs CG vs IC0 vs AMG vs hierarchical
     random-walk       extension: localized single-node estimates (ref. [6])
     qmc               extension: pseudo vs Halton Monte Carlo convergence
     spatial           extension: intra-die Karhunen-Loeve variation
     mor               extension: Krylov model order reduction (ref. [14])
     collocation       extension: intrusive Galerkin vs non-intrusive collocation
     micro             bechamel microbenchmarks of the numeric kernels

   Flags: --quick (small grids / few samples), --paper-mc (1000 MC samples
   everywhere, as in the paper). *)

let quick = ref false

let paper_mc = ref false

let steps = 24

let h = 0.125e-9

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1_sizes () =
  if !quick then [ 1_000; 2_500; 5_000 ]
  else [ 1_000; 2_500; 5_000; 10_000; 16_000; 25_000; 40_000 ]

let mc_samples_for size =
  if !paper_mc then 1000
  else if size <= 2_500 then 300
  else if size <= 10_000 then 200
  else if size <= 25_000 then 120
  else 80

let run_table1 () =
  section "Table 1: transient analysis, OPERA vs Monte Carlo (order-2 expansion)";
  Printf.printf "variation model: %s\n" (Opera.Varmodel.describe Opera.Varmodel.paper_default);
  Printf.printf "time step %.3g ns x %d steps\n%!" (h *. 1e9) steps;
  let table = Util.Table.create (Opera.Compare.header @ [ ("MC samples", Util.Table.Right) ]) in
  List.iter
    (fun target ->
      let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
      let samples = mc_samples_for target in
      let config =
        { Opera.Driver.default_config with Opera.Driver.mc_samples = samples; steps; h }
      in
      let outcome = Opera.Driver.run_grid config spec Opera.Varmodel.paper_default in
      Util.Table.add_row table
        (Opera.Compare.row_strings outcome.Opera.Driver.label outcome.Opera.Driver.report
        @ [ string_of_int samples ]);
      Printf.printf "  done: %s\n%!" outcome.Opera.Driver.label)
    (table1_sizes ());
  print_string (Util.Table.render table);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figures 1 & 2                                                       *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  section "Figures 1 & 2: voltage distribution at selected nodes, MC vs OPERA";
  let target = if !quick then 1_000 else 5_000 in
  let samples = if !paper_mc then 1000 else if !quick then 300 else 600 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  (* Two probe nodes, as the paper shows two figures: the node with the
     worst nominal drop and the grid center. *)
  let center = Powergrid.Grid_gen.center_node spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let worst_node =
    let a = Powergrid.Mna.assemble circuit in
    let cfg = Powergrid.Transient.default_config ~h ~steps in
    let worst = ref center and worst_v = ref infinity in
    Powergrid.Transient.run_circuit cfg a ~on_step:(fun _ _ x ->
        Array.iteri
          (fun node v ->
            if v < !worst_v then begin
              worst_v := v;
              worst := node
            end)
          x);
    !worst
  in
  let probes = if worst_node = center then [| worst_node |] else [| worst_node; center |] in
  let config =
    { Opera.Driver.default_config with Opera.Driver.mc_samples = samples; steps; h; probes }
  in
  let outcome = Opera.Driver.run_grid ~label:"figures" config spec Opera.Varmodel.paper_default in
  let response = outcome.Opera.Driver.response in
  let mc = outcome.Opera.Driver.mc in
  let rng = Prob.Rng.create ~seed:2025L () in
  Array.iteri
    (fun p node ->
      (* Use the step where the probe's mean drop peaks. *)
      let step =
        let best = ref 1 and best_drop = ref neg_infinity in
        for s = 1 to response.Opera.Response.steps do
          let d = vdd -. Opera.Response.mean_at response ~step:s ~node in
          if d > !best_drop then begin
            best_drop := d;
            best := s
          end
        done;
        !best
      in
      let to_drop_pct v = 100.0 *. (vdd -. v) /. vdd in
      let mc_drops = Array.map to_drop_pct mc.Opera.Monte_carlo.probe_values.(p).(step) in
      let opera_drops =
        Array.init 8000 (fun _ ->
            to_drop_pct (Opera.Response.sample_voltage response ~node ~step rng))
      in
      let lo = Float.min (Linalg.Vec.min mc_drops) (Linalg.Vec.min opera_drops) in
      let hi = Float.max (Linalg.Vec.max mc_drops) (Linalg.Vec.max opera_drops) +. 1e-9 in
      let build xs =
        let hgm = Prob.Histogram.create ~lo ~hi ~bins:16 in
        Prob.Histogram.add_all hgm xs;
        hgm
      in
      let h_mc = build mc_drops and h_op = build opera_drops in
      Printf.printf "\nFigure %d: node %d, t = %.3g ns (drop as %% of VDD)\n" (p + 1) node
        (float_of_int step *. h *. 1e9);
      print_string (Prob.Histogram.render_pair ~a:h_mc ~b:h_op ~a_label:"MC" ~b_label:"OPERA" ());
      Printf.printf "max per-bin gap: %.2f%%   KS p-value: %.4f\n%!"
        (Prob.Histogram.max_percentage_gap h_mc h_op)
        (Prob.Ks.p_value mc_drops opera_drops))
    probes;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Sec. 5.1 special case                                               *)
(* ------------------------------------------------------------------ *)

let run_special () =
  section "Sec. 5.1 special case: leakage-only variation (single factorization)";
  let target = if !quick then 1_000 else 5_000 in
  let samples = if !paper_mc then 1000 else 500 in
  let spec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target) with
      Powergrid.Grid_spec.regions_x = 2; regions_y = 2 }
  in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  (* Lognormal leakage at every bottom-layer node; lambda is the lognormal
     shape from the threshold-voltage spread. *)
  let rows = spec.Powergrid.Grid_spec.rows and cols = spec.Powergrid.Grid_spec.cols in
  let leaks =
    Array.init (rows * cols) (fun node ->
        (node, Powergrid.Grid_gen.region_of_node spec node, 5e-6))
  in
  let lambda = 0.5 in
  let sc = Opera.Special_case.make ~order:3 ~regions:4 ~lambda ~leaks ~vdd circuit in
  let probes = [| Powergrid.Grid_gen.center_node spec |] in
  let resp, opera_s = Opera.Special_case.solve sc ~h ~steps ~probes in
  let mc = Opera.Special_case.monte_carlo sc ~samples ~seed:7L ~h ~steps ~probes in
  let _, coupled_s = Opera.Special_case.solve_coupled sc ~h ~steps ~probes in
  (* Error metrics at the final step across all nodes. *)
  let n = mc.Opera.Monte_carlo.n in
  let max_mu_err = ref 0.0 and max_sd_err = ref 0.0 in
  for node = 0 to n - 1 do
    let mu_o = Opera.Response.mean_at resp ~step:steps ~node in
    let mu_m = Opera.Monte_carlo.mean_at mc ~step:steps ~node in
    let sd_o = Opera.Response.std_at resp ~step:steps ~node in
    let sd_m = Opera.Monte_carlo.std_at mc ~step:steps ~node in
    max_mu_err := Float.max !max_mu_err (100.0 *. Float.abs (mu_o -. mu_m) /. mu_m);
    if sd_m > 1e-7 *. vdd then
      max_sd_err := Float.max !max_sd_err (100.0 *. Float.abs (sd_o -. sd_m) /. sd_m)
  done;
  let size = Polychaos.Basis.size sc.Opera.Special_case.basis in
  Printf.printf "grid %d nodes, 4 regions, order-3 basis (N+1 = %d), lambda = %.2f\n" n size lambda;
  Printf.printf "OPERA (decoupled, 1 factorization + %d x %d solves): %.2f s\n" size steps opera_s;
  Printf.printf "coupled Galerkin reference:                          %.2f s\n" coupled_s;
  Printf.printf "Monte Carlo (%d samples, factorization hoisted):     %.2f s  -> speedup %.0fx\n"
    samples mc.Opera.Monte_carlo.elapsed_seconds
    (mc.Opera.Monte_carlo.elapsed_seconds /. opera_s);
  Printf.printf "max %% error vs MC at final step: mu %.4f%%  sigma %.2f%%\n%!" !max_mu_err
    !max_sd_err;
  (* Moments beyond the variance (the paper's point vs bound-based methods):
     skewness/kurtosis of the probe voltage from the explicit expansion. *)
  let pce = Opera.Response.pce_at resp ~node:probes.(0) ~step:steps in
  Printf.printf "probe node %d: mean %.6f V  sigma %.3e V  skewness %+.3f  ex-kurtosis %+.3f\n%!"
    probes.(0) (Polychaos.Pce.mean pce) (Polychaos.Pce.std pce) (Polychaos.Pce.skewness pce)
    (Polychaos.Pce.kurtosis_excess pce)

(* ------------------------------------------------------------------ *)
(* Ablation: expansion order                                           *)
(* ------------------------------------------------------------------ *)

let run_order_sweep () =
  section "Ablation: expansion order p (paper claims p = 2-3 suffices)";
  let target = if !quick then 1_000 else 2_500 in
  let samples = if !paper_mc then 1000 else 400 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vm = Opera.Varmodel.paper_default in
  let circuit = Powergrid.Grid_gen.generate spec in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  (* One MC reference reused across orders. *)
  let ref_model = Opera.Stochastic_model.build ~order:2 vm ~vdd circuit in
  let mc_config =
    { (Opera.Monte_carlo.default_config ~h ~steps) with Opera.Monte_carlo.samples }
  in
  let mc = Opera.Monte_carlo.run ref_model mc_config in
  let nominal = Opera.Driver.nominal_transient ref_model ~h ~steps in
  let table =
    Util.Table.create
      [
        ("p", Util.Table.Right); ("N+1", Util.Table.Right); ("aug dim", Util.Table.Right);
        ("avg%err mu", Util.Table.Right); ("avg%err sigma", Util.Table.Right);
        ("max%err sigma", Util.Table.Right); ("OPERA (s)", Util.Table.Right);
      ]
  in
  List.iter
    (fun order ->
      let model = Opera.Stochastic_model.build ~order vm ~vdd circuit in
      let config = { Opera.Driver.default_config with Opera.Driver.order; h; steps } in
      let response, stats, seconds = Opera.Driver.solve_opera config model in
      let report = Opera.Compare.compare ~response ~mc ~nominal ~vdd ~opera_seconds:seconds in
      Util.Table.add_row table
        [
          string_of_int order;
          string_of_int (Polychaos.Basis.size model.Opera.Stochastic_model.basis);
          string_of_int stats.Opera.Galerkin.aug_dim;
          Printf.sprintf "%.4f" report.Opera.Compare.avg_err_mean_pct;
          Printf.sprintf "%.2f" report.Opera.Compare.avg_err_std_pct;
          Printf.sprintf "%.2f" report.Opera.Compare.max_err_std_pct;
          Printf.sprintf "%.2f" seconds;
        ])
    [ 1; 2; 3; 4 ];
  print_string (Util.Table.render table);
  Printf.printf "(MC reference: %d samples, %.2f s)\n%!" samples
    mc.Opera.Monte_carlo.elapsed_seconds

(* ------------------------------------------------------------------ *)
(* Ablation: number of random variables                                *)
(* ------------------------------------------------------------------ *)

let run_nvars_sweep () =
  section "Ablation: number of RVs r (augmented-system sparsity; paper Sec. 5.2)";
  let target = if !quick then 1_000 else 2_500 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  let table =
    Util.Table.create
      [
        ("r", Util.Table.Right); ("N+1", Util.Table.Right); ("aug dim", Util.Table.Right);
        ("nnz(Gt)", Util.Table.Right); ("density x1e6", Util.Table.Right);
        ("mean-pcg (s)", Util.Table.Right); ("pcg iters", Util.Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let mode =
        if r = 2 then Opera.Varmodel.Combined
        else if r = 3 then Opera.Varmodel.Separate
        else Opera.Varmodel.Grouped_wires (r - 1)
      in
      let vm = { Opera.Varmodel.paper_default with Opera.Varmodel.mode } in
      let model = Opera.Stochastic_model.build ~order:2 vm ~vdd circuit in
      let gt = Opera.Galerkin.assemble_g model in
      let dim, _ = Linalg.Sparse.dims gt in
      let nnz = Linalg.Sparse.nnz gt in
      let density = 1e6 *. float_of_int nnz /. (float_of_int dim *. float_of_int dim) in
      let config = { Opera.Driver.default_config with Opera.Driver.h; steps } in
      let _, stats, seconds = Opera.Driver.solve_opera config model in
      Util.Table.add_row table
        [
          string_of_int r;
          string_of_int (Polychaos.Basis.size model.Opera.Stochastic_model.basis);
          string_of_int dim;
          string_of_int nnz;
          Printf.sprintf "%.1f" density;
          Printf.sprintf "%.2f" seconds;
          string_of_int stats.Opera.Galerkin.pcg_iterations;
        ])
    [ 2; 3; 4; 5 ];
  print_string (Util.Table.render table);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablation: solver                                                    *)
(* ------------------------------------------------------------------ *)

let run_solver_ablation () =
  section "Ablation: direct augmented Cholesky vs mean-block PCG";
  let sizes = if !quick then [ 1_000 ] else [ 1_000; 2_500; 5_000 ] in
  let table =
    Util.Table.create
      [
        ("nodes", Util.Table.Right); ("direct (s)", Util.Table.Right);
        ("nnz_L(aug)", Util.Table.Right); ("mean-pcg (s)", Util.Table.Right);
        ("pcg iters", Util.Table.Right); ("max |dmu| (V)", Util.Table.Right);
        ("max |dsigma| (V)", Util.Table.Right);
      ]
  in
  List.iter
    (fun target ->
      let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
      let vdd = spec.Powergrid.Grid_spec.vdd in
      let circuit = Powergrid.Grid_gen.generate spec in
      let model =
        Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit
      in
      let solve solver =
        let config = { Opera.Driver.default_config with Opera.Driver.solver; h; steps } in
        Opera.Driver.solve_opera config model
      in
      let r_direct, st_direct, t_direct = solve Opera.Galerkin.Direct in
      let r_pcg, st_pcg, t_pcg =
        solve (Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 })
      in
      let n = model.Opera.Stochastic_model.n in
      let dmu = ref 0.0 and dsd = ref 0.0 in
      for node = 0 to n - 1 do
        dmu :=
          Float.max !dmu
            (Float.abs
               (Opera.Response.mean_at r_direct ~step:steps ~node
               -. Opera.Response.mean_at r_pcg ~step:steps ~node));
        dsd :=
          Float.max !dsd
            (Float.abs
               (Opera.Response.std_at r_direct ~step:steps ~node
               -. Opera.Response.std_at r_pcg ~step:steps ~node))
      done;
      Util.Table.add_row table
        [
          string_of_int (Powergrid.Grid_spec.node_count spec);
          Printf.sprintf "%.2f" t_direct;
          string_of_int st_direct.Opera.Galerkin.nnz_factor;
          Printf.sprintf "%.2f" t_pcg;
          string_of_int st_pcg.Opera.Galerkin.pcg_iterations;
          Printf.sprintf "%.2e" !dmu;
          Printf.sprintf "%.2e" !dsd;
        ])
    sizes;
  print_string (Util.Table.render table);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Matrix-free Galerkin operator: assembled vs matrix-free sweep       *)
(* ------------------------------------------------------------------ *)

(* Sweeps grid size x chaos order, runs the same transient through the
   assembled-direct and matrix-free-PCG solvers, prints a table and
   writes a machine-readable BENCH_galerkin.json perf record so future
   PRs can track the trajectory.  Schema per record:
   {grid_nodes, order, nvars, solver, assemble_s, factor_s, step_s,
    peak_nnz}. *)
let run_galerkin_op () =
  section "Matrix-free Galerkin: assembled direct vs matrix-free PCG (BENCH_galerkin.json)";
  let sizes = if !quick then [ 500; 1_000 ] else [ 1_000; 2_500; 5_000 ] in
  let orders = [ 2; 3 ] in
  let bench_steps = if !quick then 8 else steps in
  let vm = Opera.Varmodel.paper_default in
  let records = ref [] in
  let table =
    Util.Table.create
      [
        ("nodes", Util.Table.Right); ("p", Util.Table.Right); ("solver", Util.Table.Left);
        ("assemble (s)", Util.Table.Right); ("factor (s)", Util.Table.Right);
        ("steps (s)", Util.Table.Right); ("peak nnz", Util.Table.Right);
        ("pcg iters", Util.Table.Right); ("max |dmu| (V)", Util.Table.Right);
      ]
  in
  List.iter
    (fun target ->
      List.iter
        (fun order ->
          let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
          let vdd = spec.Powergrid.Grid_spec.vdd in
          let circuit = Powergrid.Grid_gen.generate spec in
          let model = Opera.Stochastic_model.build ~order vm ~vdd circuit in
          let nodes = Powergrid.Grid_spec.node_count spec in
          let nvars = Polychaos.Basis.dim model.Opera.Stochastic_model.basis in
          (* The matrix-free route still factors the two n x n nominal
             blocks for its preconditioner; charge that fill to its peak
             so the comparison is honest. *)
          let nominal_fill =
            let g0 = Powergrid.Mna.g_total model.Opera.Stochastic_model.mna in
            let c0 = Powergrid.Mna.c_total model.Opera.Stochastic_model.mna in
            let f =
              Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection
                (Linalg.Sparse.axpy ~alpha:(1.0 /. h) c0 g0)
            in
            2 * Linalg.Sparse_cholesky.nnz_l f
          in
          let solve solver =
            let options =
              { Opera.Galerkin.default_options with Opera.Galerkin.solver }
            in
            Opera.Galerkin.solve_transient ~options model ~h ~steps:bench_steps
          in
          let r_direct, st_direct = solve Opera.Galerkin.Direct in
          let r_mf, st_mf =
            solve (Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 500 })
          in
          let dmu = ref 0.0 in
          let n = model.Opera.Stochastic_model.n in
          for node = 0 to n - 1 do
            dmu :=
              Float.max !dmu
                (Float.abs
                   (Opera.Response.mean_at r_direct ~step:bench_steps ~node
                   -. Opera.Response.mean_at r_mf ~step:bench_steps ~node))
          done;
          let peak_of label (st : Opera.Galerkin.stats) =
            match label with
            | "assembled-direct" -> st.Opera.Galerkin.nnz_aug + st.Opera.Galerkin.nnz_factor
            | _ -> st.Opera.Galerkin.nnz_aug + nominal_fill
          in
          let emit label (st : Opera.Galerkin.stats) =
            let peak = peak_of label st in
            records := (nodes, order, nvars, label, st, peak) :: !records;
            Util.Table.add_row table
              [
                string_of_int nodes; string_of_int order; label;
                Printf.sprintf "%.3f" st.Opera.Galerkin.assemble_seconds;
                Printf.sprintf "%.3f" st.Opera.Galerkin.factor_seconds;
                Printf.sprintf "%.3f" st.Opera.Galerkin.step_seconds;
                string_of_int peak;
                string_of_int st.Opera.Galerkin.pcg_iterations;
                Printf.sprintf "%.2e" !dmu;
              ]
          in
          emit "assembled-direct" st_direct;
          emit "matrix-free-pcg" st_mf;
          Printf.printf "  done: %d nodes, order %d\n%!" nodes order)
        orders)
    sizes;
  print_string (Util.Table.render table);
  let path = "BENCH_galerkin.json" in
  let oc = open_out path in
  (* Same top-level shape as the CLI's --metrics-out consumer expects:
     per-configuration records plus the process-wide metrics registry
     (phase timers, PCG iteration/unconverged/fallback counters). *)
  output_string oc "{\n\"records\": [\n";
  let rows = List.rev !records in
  List.iteri
    (fun i (nodes, order, nvars, label, (st : Opera.Galerkin.stats), peak) ->
      let agg = st.Opera.Galerkin.health in
      Printf.fprintf oc
        "  {\"grid_nodes\": %d, \"order\": %d, \"nvars\": %d, \"solver\": %S, \
         \"assemble_s\": %.6f, \"factor_s\": %.6f, \"step_s\": %.6f, \"peak_nnz\": %d, \
         \"pcg_iters\": %d, \"unconverged\": %d, \"fallbacks\": %d, \
         \"worst_rel_residual\": %.9g}%s\n"
        nodes order nvars label st.Opera.Galerkin.assemble_seconds
        st.Opera.Galerkin.factor_seconds st.Opera.Galerkin.step_seconds peak
        agg.Linalg.Solve_report.iterations agg.Linalg.Solve_report.unconverged
        agg.Linalg.Solve_report.fallbacks agg.Linalg.Solve_report.worst_rel_residual
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "],\n\"metrics\": ";
  output_string oc (Util.Metrics.to_json Util.Metrics.global);
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "wrote %d records to %s\n%!" (List.length rows) path

(* ------------------------------------------------------------------ *)
(* Extension: linear-solver shoot-out (direct / CG / IC0-CG / AMG-CG)  *)
(* ------------------------------------------------------------------ *)

let run_linear_solvers () =
  section "Extension: nominal-grid linear solvers (one DC solve)";
  let target = if !quick then 2_500 else 10_000 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let g = Powergrid.Mna.g_total a in
  let b = Powergrid.Mna.inject a 0.3e-9 in
  let reference = ref [||] in
  let table =
    Util.Table.create
      [
        ("solver", Util.Table.Left); ("setup (s)", Util.Table.Right);
        ("solve (s)", Util.Table.Right); ("iters", Util.Table.Right);
        ("rel err", Util.Table.Right);
      ]
  in
  let add name setup_s solve_s iters x =
    let err =
      if Array.length !reference = 0 then begin
        reference := x;
        0.0
      end
      else Linalg.Vec.rel_error x ~reference:!reference
    in
    Util.Table.add_row table
      [ name; Printf.sprintf "%.3f" setup_s; Printf.sprintf "%.3f" solve_s;
        (if iters < 0 then "-" else string_of_int iters); Printf.sprintf "%.1e" err ]
  in
  let f, t_setup = Util.Timer.time (fun () -> Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection g) in
  let x, t_solve = Util.Timer.time (fun () -> Linalg.Sparse_cholesky.solve f b) in
  add "cholesky (ND)" t_setup t_solve (-1) x;
  let (x, st), t = Util.Timer.time (fun () -> Linalg.Cg.solve_sparse ~tol:1e-10 g b) in
  add "cg (plain)" 0.0 t st.Linalg.Cg.iterations x;
  let pre, t_setup = Util.Timer.time (fun () -> Linalg.Cg.ic0 g) in
  let (x, st), t = Util.Timer.time (fun () -> Linalg.Cg.solve_sparse ~precond:pre ~tol:1e-10 g b) in
  add "cg + ic0" t_setup t st.Linalg.Cg.iterations x;
  let amg, t_setup = Util.Timer.time (fun () -> Linalg.Amg.build g) in
  let (x, st), t = Util.Timer.time (fun () -> Linalg.Amg.solve ~tol:1e-10 amg g b) in
  add "cg + amg" t_setup t st.Linalg.Cg.iterations x;
  let hier, t_setup =
    Util.Timer.time (fun () ->
        let n, _ = Linalg.Sparse.dims g in
        Powergrid.Hierarchical.build g
          ~part:(Powergrid.Hierarchical.partition_by_stripes ~n ~blocks:8))
  in
  let x, t = Util.Timer.time (fun () -> Powergrid.Hierarchical.solve hier b) in
  add
    (Printf.sprintf "hierarchical (8 blk, %d ports)" (Powergrid.Hierarchical.ports hier))
    t_setup t (-1) x;
  print_string (Util.Table.render table);
  Printf.printf "(amg hierarchy: %s)\n%!"
    (String.concat " > " (List.map string_of_int (Linalg.Amg.level_dims amg)))

(* ------------------------------------------------------------------ *)
(* Extension: random-walk localized solver                             *)
(* ------------------------------------------------------------------ *)

let run_random_walk () =
  section "Extension: random-walk localized DC estimate (paper ref. [6])";
  let target = if !quick then 2_500 else 10_000 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let time = 0.3e-9 in
  let exact, t_direct = Util.Timer.time (fun () -> Powergrid.Dc.solve_at a time) in
  let walk, t_prep = Util.Timer.time (fun () -> Powergrid.Random_walk.prepare a ~time) in
  let rng = Prob.Rng.create ~seed:11L () in
  let node = Powergrid.Grid_gen.center_node spec in
  let table =
    Util.Table.create
      [ ("walks", Util.Table.Right); ("estimate (V)", Util.Table.Right);
        ("stderr (V)", Util.Table.Right); ("error (V)", Util.Table.Right);
        ("time (s)", Util.Table.Right) ]
  in
  List.iter
    (fun walks ->
      let (est, se), t = Util.Timer.time (fun () -> Powergrid.Random_walk.estimate walk rng ~node ~walks) in
      Util.Table.add_row table
        [ string_of_int walks; Printf.sprintf "%.6f" est; Printf.sprintf "%.1e" se;
          Printf.sprintf "%.1e" (Float.abs (est -. exact.(node))); Printf.sprintf "%.3f" t ])
    [ 100; 1000; 10_000 ];
  print_string (Util.Table.render table);
  Printf.printf "(exact v = %.6f V; full direct solve %.3f s, walk prep %.3f s)\n%!" exact.(node)
    t_direct t_prep

(* ------------------------------------------------------------------ *)
(* Extension: pseudo vs quasi Monte Carlo convergence                  *)
(* ------------------------------------------------------------------ *)

let run_qmc () =
  section "Extension: Monte Carlo vs quasi-Monte Carlo convergence (mean drop at probe)";
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 1_000 in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  let model = Opera.Stochastic_model.build ~order:3 Opera.Varmodel.paper_default ~vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  (* High-order Galerkin as ground truth for the mean. *)
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h ~steps:4 in
  let truth = Opera.Response.mean_at response ~step:2 ~node:probe in
  let table =
    Util.Table.create
      [ ("samples", Util.Table.Right); ("|MC err| (uV)", Util.Table.Right);
        ("|QMC err| (uV)", Util.Table.Right) ]
  in
  List.iter
    (fun samples ->
      let run sampler seed =
        let cfg =
          { (Opera.Monte_carlo.default_config ~h ~steps:4) with
            Opera.Monte_carlo.samples; probes = [| probe |]; sampler; seed }
        in
        let mc = Opera.Monte_carlo.run model cfg in
        Float.abs (Opera.Monte_carlo.mean_at mc ~step:2 ~node:probe -. truth)
      in
      Util.Table.add_row table
        [
          string_of_int samples;
          Printf.sprintf "%.3f" (1e6 *. run Opera.Monte_carlo.Pseudo 7L);
          Printf.sprintf "%.3f" (1e6 *. run Opera.Monte_carlo.Quasi_halton 7L);
        ])
    (if !quick then [ 32; 128 ] else [ 32; 128; 512 ]);
  print_string (Util.Table.render table);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Extension: intra-die spatial correlation (KL modes)                 *)
(* ------------------------------------------------------------------ *)

let run_spatial () =
  section "Extension: intra-die spatial variation via Karhunen-Loeve modes";
  let target = if !quick then 1_000 else 2_500 in
  let spec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target) with
      Powergrid.Grid_spec.regions_x = 4; regions_y = 4 }
  in
  let circuit = Powergrid.Grid_gen.generate spec in
  let centers = Opera.Spatial.region_centers spec in
  let table =
    Util.Table.create
      [ ("corr len", Util.Table.Right); ("modes (99%)", Util.Table.Right);
        ("N+1", Util.Table.Right); ("OPERA (s)", Util.Table.Right);
        ("sigma@center (uV)", Util.Table.Right) ]
  in
  List.iter
    (fun corr_length ->
      let kl =
        Opera.Spatial.karhunen_loeve ~sigma:(0.25 /. 3.0) ~corr_length ~centers ~energy:0.99
      in
      let model =
        Opera.Spatial.build_model ~order:2 kl ~base:Opera.Varmodel.paper_default ~spec circuit
      in
      let probe = Powergrid.Grid_gen.center_node spec in
      let options =
        { Opera.Galerkin.default_options with
          Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 };
          probes = [| probe |] }
      in
      let (response, _), seconds =
        Util.Timer.time (fun () -> Opera.Galerkin.solve_transient ~options model ~h ~steps:8)
      in
      (* max sigma over time at the probe *)
      let sd = ref 0.0 in
      for st = 1 to 8 do
        sd := Float.max !sd (Opera.Response.std_at response ~step:st ~node:probe)
      done;
      Util.Table.add_row table
        [
          Printf.sprintf "%.2f" corr_length;
          string_of_int (Opera.Spatial.modes kl);
          string_of_int (Polychaos.Basis.size model.Opera.Stochastic_model.basis);
          Printf.sprintf "%.2f" seconds;
          Printf.sprintf "%.1f" (1e6 *. !sd);
        ])
    [ 2.0; 0.7; 0.3 ];
  print_string (Util.Table.render table);
  Printf.printf
    "(short correlation lengths need more KL modes; the inter-die limit is one mode)\n%!"

(* ------------------------------------------------------------------ *)
(* Extension: intrusive Galerkin vs non-intrusive collocation          *)
(* ------------------------------------------------------------------ *)

let run_collocation () =
  section "Extension: intrusive Galerkin vs non-intrusive collocation";
  let sizes = if !quick then [ 1_000 ] else [ 1_000; 2_500; 5_000 ] in
  let table =
    Util.Table.create
      [ ("nodes", Util.Table.Right); ("dim", Util.Table.Right);
        ("galerkin (s)", Util.Table.Right); ("colloc (s)", Util.Table.Right);
        ("transients", Util.Table.Right); ("max |dmu| (V)", Util.Table.Right);
        ("max |dsigma| (V)", Util.Table.Right) ]
  in
  List.iter
    (fun target ->
      let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
      let vdd = spec.Powergrid.Grid_spec.vdd in
      let circuit = Powergrid.Grid_gen.generate spec in
      let model =
        Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit
      in
      let options =
        { Opera.Galerkin.default_options with
          Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 } }
      in
      let (rg, _), t_g =
        Util.Timer.time (fun () -> Opera.Galerkin.solve_transient ~options model ~h ~steps)
      in
      let (rc, runs), t_c =
        Util.Timer.time (fun () -> Opera.Collocation.solve_transient model ~h ~steps)
      in
      let n = model.Opera.Stochastic_model.n in
      let dmu = ref 0.0 and dsd = ref 0.0 in
      for node = 0 to n - 1 do
        dmu :=
          Float.max !dmu
            (Float.abs
               (Opera.Response.mean_at rg ~step:steps ~node
               -. Opera.Response.mean_at rc ~step:steps ~node));
        dsd :=
          Float.max !dsd
            (Float.abs
               (Opera.Response.std_at rg ~step:steps ~node
               -. Opera.Response.std_at rc ~step:steps ~node))
      done;
      Util.Table.add_row table
        [ string_of_int (Powergrid.Grid_spec.node_count spec);
          string_of_int (Polychaos.Basis.dim model.Opera.Stochastic_model.basis);
          Printf.sprintf "%.2f" t_g; Printf.sprintf "%.2f" t_c; string_of_int runs;
          Printf.sprintf "%.2e" !dmu; Printf.sprintf "%.2e" !dsd ])
    sizes;
  print_string (Util.Table.render table);
  Printf.printf
    "(the two methods agree to truncation order; collocation pays (p+1)^r transients,\n\
    \ Galerkin one coupled solve — the crossover favors Galerkin as r grows)\n%!"

(* ------------------------------------------------------------------ *)
(* Extension: model order reduction (paper Sec. 5.2, ref. [14])        *)
(* ------------------------------------------------------------------ *)

let run_mor () =
  section "Extension: Krylov model order reduction vs full transient";
  let target = if !quick then 2_500 else 10_000 in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default target in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let n = a.Powergrid.Mna.n in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let probe = Powergrid.Grid_gen.center_node spec in
  let snapshot t =
    let u = Array.make n 0.0 in
    Powergrid.Mna.inject_into a t u;
    u
  in
  (* Seed with the excitation at every simulated step (POD-style snapshots):
     the input term is then represented exactly; the Krylov moments supply
     the dynamics. *)
  let inputs =
    Array.append
      [| Array.copy a.Powergrid.Mna.u_pad |]
      (Array.init steps (fun k -> snapshot (float_of_int (k + 1) *. h)))
  in
  let full = Array.make (steps + 1) 0.0 in
  let (), t_full =
    Util.Timer.time (fun () ->
        let cfg = Powergrid.Transient.default_config ~h ~steps in
        Powergrid.Transient.run_circuit cfg a ~on_step:(fun k _ x -> full.(k) <- x.(probe)))
  in
  let table =
    Util.Table.create
      [ ("blocks", Util.Table.Right); ("k", Util.Table.Right); ("build (s)", Util.Table.Right);
        ("transient (s)", Util.Table.Right); ("max err @probe (uV)", Util.Table.Right) ]
  in
  List.iter
    (fun blocks ->
      let red, t_build =
        Util.Timer.time (fun () -> Powergrid.Mor.reduce ~g ~c ~inputs ~blocks)
      in
      let err = ref 0.0 in
      let (), t_red =
        Util.Timer.time (fun () ->
            Powergrid.Mor.transient red ~h ~steps
              ~inject:(fun t u -> Powergrid.Mna.inject_into a t u)
              ~n
              ~on_step:(fun k _ z ->
                let v = Powergrid.Mor.lift red z ~node:probe in
                err := Float.max !err (Float.abs (v -. full.(k)))))
      in
      Util.Table.add_row table
        [ string_of_int blocks; string_of_int (Powergrid.Mor.dim red);
          Printf.sprintf "%.3f" t_build; Printf.sprintf "%.3f" t_red;
          Printf.sprintf "%.2f" (1e6 *. !err) ])
    [ 2; 4; 6 ];
  print_string (Util.Table.render table);
  Printf.printf "(full transient on %d nodes: %.3f s)\n%!" n t_full

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  section "Microbenchmarks (bechamel; time per run)";
  let open Bechamel in
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 2_500 in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let g = Powergrid.Mna.g_total a in
  let n, _ = Linalg.Sparse.dims g in
  let x = Array.init n (fun i -> float_of_int (i mod 17) /. 17.0) in
  let y = Array.make n 0.0 in
  let perm = Linalg.Ordering.compute Linalg.Ordering.Nested_dissection g in
  let factor = Linalg.Sparse_cholesky.factor ~perm g in
  let rng = Prob.Rng.create () in
  let basis3 = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:3 ~order:3 in
  let model =
    Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default
      ~vdd:spec.Powergrid.Grid_spec.vdd circuit
  in
  let tests =
    [
      Test.make ~name:"spmv-2.5k" (Staged.stage (fun () -> Linalg.Sparse.mul_vec_into g x y));
      Test.make ~name:"chol-factor-2.5k"
        (Staged.stage (fun () -> ignore (Linalg.Sparse_cholesky.factor ~perm g)));
      Test.make ~name:"chol-solve-2.5k"
        (Staged.stage (fun () -> Linalg.Sparse_cholesky.solve_in_place factor y));
      Test.make ~name:"nd-ordering-2.5k"
        (Staged.stage (fun () ->
             ignore (Linalg.Ordering.compute Linalg.Ordering.Nested_dissection g)));
      Test.make ~name:"rng-gaussian" (Staged.stage (fun () -> ignore (Prob.Rng.gaussian rng)));
      Test.make ~name:"hermite-eval-all-10"
        (Staged.stage (fun () ->
             ignore (Polychaos.Family.eval_all Polychaos.Family.hermite 10 0.7)));
      Test.make ~name:"triple-product-3v-o3"
        (Staged.stage (fun () -> ignore (Polychaos.Triple_product.create basis3)));
      Test.make ~name:"galerkin-assemble-2.5k"
        (Staged.stage (fun () -> ignore (Opera.Galerkin.assemble_g model)));
    ]
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] ->
              let unit_, value =
                if t > 1e9 then ("s ", t /. 1e9)
                else if t > 1e6 then ("ms", t /. 1e6)
                else if t > 1e3 then ("us", t /. 1e3)
                else ("ns", t)
              in
              Printf.printf "  %-30s %10.2f %s/run\n%!" name value unit_
          | _ -> Printf.printf "  %-30s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  quick := List.mem "--quick" args;
  paper_mc := List.mem "--paper-mc" args;
  let commands =
    List.filter (fun a -> not (String.length a > 2 && String.sub a 0 2 = "--")) args
  in
  let dispatch = function
    | "table1" -> run_table1 ()
    | "figures" -> run_figures ()
    | "special" -> run_special ()
    | "order-sweep" -> run_order_sweep ()
    | "nvars-sweep" -> run_nvars_sweep ()
    | "solver-ablation" -> run_solver_ablation ()
    | "galerkin-op" -> run_galerkin_op ()
    | "linear-solvers" -> run_linear_solvers ()
    | "random-walk" -> run_random_walk ()
    | "qmc" -> run_qmc ()
    | "spatial" -> run_spatial ()
    | "mor" -> run_mor ()
    | "collocation" -> run_collocation ()
    | "micro" -> run_micro ()
    | other ->
        Printf.eprintf "unknown bench %S\n" other;
        exit 1
  in
  match commands with
  | [] ->
      run_table1 ();
      run_figures ();
      run_special ();
      run_order_sweep ();
      run_nvars_sweep ();
      run_solver_ablation ();
      run_galerkin_op ();
      run_linear_solvers ();
      run_random_walk ();
      run_qmc ();
      run_spatial ();
      run_mor ();
      run_collocation ();
      run_micro ()
  | cmds -> List.iter dispatch cmds
