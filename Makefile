.PHONY: all build test bench bench-quick bench-paper bench-galerkin examples clean

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

bench-paper:
	dune exec bench/main.exe -- table1 --paper-mc

bench-galerkin:
	dune exec bench/main.exe -- galerkin-op --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/irdrop_variation.exe
	dune exec examples/leakage_special_case.exe
	dune exec examples/netlist_flow.exe
	dune exec examples/distribution_plot.exe
	dune exec examples/spatial_variation.exe
	dune exec examples/yield_signoff.exe
	dune exec examples/decap_insertion.exe

clean:
	dune clean
