.PHONY: all build test ci lint lint-json lint-sarif bench bench-quick bench-paper bench-galerkin bench-metrics bench-batch bench-transient bench-st bench-service bench-scale examples clean help

all: build

help:
	@echo "OPERA targets:"
	@echo "  build          dune build @all"
	@echo "  test           dune runtest"
	@echo "  lint           opera-lint typedtree analysis over lib/ and tools/ (R1-R8; exit 1 on unwaived findings)"
	@echo "  lint-json      lint + machine-readable LINT_report.json (v2: per-rule, race, cache, timings)"
	@echo "  lint-sarif     lint + SARIF 2.1.0 report in LINT_report.sarif"
	@echo "  ci             format check, lint, strict-warning build (--profile ci), tests"
	@echo "  bench*         benchmark drivers (bench, bench-quick, bench-paper, bench-galerkin, bench-metrics, bench-batch, bench-transient, bench-st, bench-service, bench-scale)"
	@echo "  examples       run every example binary"
	@echo "  clean          dune clean"
	@echo ""
	@echo "Waiving a lint finding: put '(* opera-lint: <key> *)' on the offending line"
	@echo "(or the line above; race waivers may also sit on the closure head line);"
	@echo "keys: exact, race, banned, unsafe, mli, order, alloc, resource.  Exact float"
	@echo "compares may also carry an [@opera.exact] attribute.  Lint results are"
	@echo "cached per file under _build/lint-cache.  See DESIGN.md,"
	@echo "'Static analysis & invariants'."

build:
	dune build @all

test:
	dune runtest

# Static analysis: the opera-lint rule catalogue (exact float compares,
# per-closure capture analysis, banned constructs, unsafe indexing,
# .mli coverage, determinism, hot-path allocation discipline, resource
# safety) over lib/ and tools/, typechecked through compiler-libs
# against the dune build plan.  Per-file results are cached under
# _build/lint-cache keyed by source + rule-config digest, so warm runs
# re-analyze only edited files.  `dune build @lint` is the hermetic
# (uncached) equivalent.
lint:
	dune build tools/lint/opera_lint.exe
	dune exec tools/lint/opera_lint.exe -- --cache-dir _build/lint-cache lib tools

lint-json:
	dune build tools/lint/opera_lint.exe
	dune exec tools/lint/opera_lint.exe -- --cache-dir _build/lint-cache --json LINT_report.json lib tools

lint-sarif:
	dune build tools/lint/opera_lint.exe
	dune exec tools/lint/opera_lint.exe -- --cache-dir _build/lint-cache --sarif LINT_report.sarif lib tools

# Everything a reviewer runs: the format check (when ocamlformat is
# available), the lint gate, then a strict-warning build and the test
# suite under the ci profile (warnings-as-errors for lib/; the dev
# profile stays lenient).
ci:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt || exit 1; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi
	$(MAKE) lint-json
	dune exec bench/validate_metrics.exe -- LINT_report.json
	dune build @all --profile ci
	dune runtest --profile ci
	dune exec bench/transient_bench.exe -- --quick --out transient_smoke.json > /dev/null
	dune exec bench/st_bench.exe -- --quick --out st_smoke.json > /dev/null
	dune exec bench/batch_bench.exe -- --quick --out batch_smoke.json > /dev/null
	dune exec bench/service_bench.exe -- --quick --out service_smoke.json > /dev/null
	dune exec bench/scale_bench.exe -- --quick --out scale_smoke.json > /dev/null
	dune exec bench/validate_metrics.exe -- transient_smoke.json st_smoke.json batch_smoke.json service_smoke.json scale_smoke.json
	rm -f transient_smoke.json st_smoke.json batch_smoke.json service_smoke.json scale_smoke.json
	rm -rf _bench_batch_cache _bench_batch_resume _bench_batch_shard _bench_service_cache _bench_scale_cache

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

bench-paper:
	dune exec bench/main.exe -- table1 --paper-mc

bench-galerkin:
	dune exec bench/main.exe -- galerkin-op --quick

# Produce a --metrics-out registry dump and the galerkin bench JSON,
# then check both against the schema with the bundled validator.
# Batch-engine throughput + crash safety: one mixed batch, cold vs warm
# store, 1/2/4 jobs in flight, then a kill-and-resume replay and a
# 2-shard partition over a shared store; the run aborts if a warm run
# factors anything, any stream drifts from the cold one, the resumed
# stream isn't bitwise-identical, or the shards overlap or miss a job.
# The JSON (including journal replay/write counts) is schema-checked.
bench-batch:
	dune build bench/batch_bench.exe bench/validate_metrics.exe
	dune exec bench/batch_bench.exe -- --quick
	dune exec bench/validate_metrics.exe -- BENCH_batch.json

# Transient hot-path perf trajectory: {direct, pcg} x {sequential,
# level-scheduled} x {cold, warm-start} over grid sizes and chaos
# orders, plus the pool's per-dispatch overhead.  The bench itself
# asserts bitwise waveform identity of the pooled path and the
# warm-start iteration savings, and the JSON is schema-checked.
bench-transient:
	dune build bench/transient_bench.exe bench/validate_metrics.exe
	dune exec bench/transient_bench.exe
	dune exec bench/validate_metrics.exe -- BENCH_transient.json

# Stochastic-testing backend head-to-head: st vs matrix-free PCG vs
# assembled-direct transients over chaos orders 2-5 on the flagship
# grid.  The bench asserts the moment-drift bounds and the crossover
# order (st must beat matrix-free pcg from order 3 on), and the JSON is
# schema-checked, moment bounds included.
bench-st:
	dune build bench/st_bench.exe bench/validate_metrics.exe
	dune exec bench/st_bench.exe
	dune exec bench/validate_metrics.exe -- BENCH_st.json

# Analysis-service throughput: an in-process `opera serve` daemon on a
# Unix-domain socket, one flagship batch submitted cold, warm and from
# concurrent clients.  The bench asserts the service contract (every
# response byte-identical to the cold stream, zero factorizations after
# the cold run, warm jobs/s >= 5x cold, nothing rejected) and the JSON
# is schema-checked, replay counts and latency percentiles included.
bench-service:
	dune build bench/service_bench.exe bench/validate_metrics.exe
	dune exec bench/service_bench.exe
	dune exec bench/validate_metrics.exe -- BENCH_service.json
	rm -rf _bench_service_cache

# Million-node scaling: streaming MNA assembly (no triplet lists) at
# 1e4/1e5/1e6 nodes, AMG- vs IC(0)-preconditioned CG on the mean
# conductance block, and a warm mapped replay of the AMG setup artifact.
# The bench asserts the scaling contracts (scratch <= 320 B/node, AMG
# iterations within 2x across the sweep, AMG beating IC(0) on solve
# wall-clock at 1e5, zero full decodes on the warm replay) and the JSON
# is schema-checked.
bench-scale:
	dune build bench/scale_bench.exe bench/validate_metrics.exe
	dune exec bench/scale_bench.exe
	dune exec bench/validate_metrics.exe -- BENCH_scale.json
	rm -rf _bench_scale_cache

bench-metrics:
	dune build bin/opera_cli.exe bench/main.exe bench/validate_metrics.exe
	dune exec bin/opera_cli.exe -- analyze --nodes 400 --steps 4 --solver pcg \
		--metrics-out metrics_smoke.json > /dev/null
	dune exec bench/main.exe -- galerkin-op --quick > /dev/null
	dune exec bench/validate_metrics.exe -- metrics_smoke.json BENCH_galerkin.json
	rm -f metrics_smoke.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/irdrop_variation.exe
	dune exec examples/leakage_special_case.exe
	dune exec examples/netlist_flow.exe
	dune exec examples/distribution_plot.exe
	dune exec examples/spatial_variation.exe
	dune exec examples/yield_signoff.exe
	dune exec examples/decap_insertion.exe
	dune exec examples/batch_sweep.exe

clean:
	dune clean
