.PHONY: all build test ci bench bench-quick bench-paper bench-galerkin bench-metrics examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Everything a reviewer runs: the format check (when ocamlformat is
# available), the full build, and the test suite.
ci:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt || exit 1; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi
	dune build @all
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

bench-paper:
	dune exec bench/main.exe -- table1 --paper-mc

bench-galerkin:
	dune exec bench/main.exe -- galerkin-op --quick

# Produce a --metrics-out registry dump and the galerkin bench JSON,
# then check both against the schema with the bundled validator.
bench-metrics:
	dune build bin/opera_cli.exe bench/main.exe bench/validate_metrics.exe
	dune exec bin/opera_cli.exe -- analyze --nodes 400 --steps 4 --solver pcg \
		--metrics-out metrics_smoke.json > /dev/null
	dune exec bench/main.exe -- galerkin-op --quick > /dev/null
	dune exec bench/validate_metrics.exe -- metrics_smoke.json BENCH_galerkin.json
	rm -f metrics_smoke.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/irdrop_variation.exe
	dune exec examples/leakage_special_case.exe
	dune exec examples/netlist_flow.exe
	dune exec examples/distribution_plot.exe
	dune exec examples/spatial_variation.exe
	dune exec examples/yield_signoff.exe
	dune exec examples/decap_insertion.exe

clean:
	dune clean
