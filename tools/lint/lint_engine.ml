(* opera-lint v2: typedtree-driven project lint.

   Orchestration: discover sources, map each onto its dune compilation
   plan (unit name, alias open, cmi load path), probe the incremental
   cache, typecheck misses through compiler-libs, run the rule passes,
   apply source waiver comments, and aggregate per-closure race stats.

   The per-file work fans out over the [Util.Parallel] worker pool;
   the typechecker itself (global compiler-libs state) is serialized
   inside [Lint_typed].  Results land in a pre-sized array indexed by
   file, chunk-disjoint by construction. *)

module Rules = Lint_rules
module Project = Lint_project
module Typed = Lint_typed
module Cache = Lint_cache
module Report = Lint_report

type rule = Rules.rule =
  | Exact_float
  | Domain_race
  | Banned_construct
  | Unsafe_index
  | Missing_mli
  | Determinism
  | Hot_alloc
  | Resource_safety
  | Parse_failure
  | Type_failure

type finding = Rules.finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  anchor : int;
  msg : string;
  waived : bool;
}

type config = Rules.config = {
  unsafe_allowlist : string list;
  clock_allowlist : string list;
  check_mli : bool;
}

let default_config = Rules.default_config
let rule_id = Rules.rule_id
let all_rules = Rules.all_rules
let waiver_key = Rules.waiver_key
let finding_order = Report.finding_order
let summarize = Report.summarize
let exit_code = Report.exit_code
let human_report = Report.human_report
let json_report = Report.json_report
let sarif_report = Report.sarif_report

(* ---- waiver comments --------------------------------------------------- *)

let split_lines s = Array.of_list (String.split_on_char '\n' s)

(* Does [line] carry an [(* opera-lint: ... *)] comment naming [key]?
   Several keys may share one comment: [(* opera-lint: exact race *)]. *)
let line_waives line key =
  let marker = "opera-lint:" in
  let mlen = String.length marker in
  let llen = String.length line in
  let rec find i =
    if i + mlen > llen then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some start ->
      let stop =
        let rec close i =
          if i + 1 >= llen then llen
          else if line.[i] = '*' && line.[i + 1] = ')' then i
          else close (i + 1)
        in
        close start
      in
      let body = String.sub line start (stop - start) in
      let words =
        String.split_on_char ' ' body
        |> List.concat_map (String.split_on_char ',')
        |> List.map String.trim
        |> List.filter (fun w -> w <> "")
      in
      List.mem key words

(* A finding is waived by a comment on its own line or the line above;
   race findings are also waived by a comment at (or just above) the
   head line of their parallel closure, so one [(* opera-lint: race *)]
   covers the whole closure. *)
let apply_waivers lines findings =
  let nlines = Array.length lines in
  let get i = if i >= 1 && i <= nlines then lines.(i - 1) else "" in
  let waived_at i key = line_waives (get i) key || line_waives (get (i - 1)) key in
  List.map
    (fun (f : finding) ->
      if f.waived then f
      else
        match waiver_key f.rule with
        | None -> f
        | Some key ->
            if waived_at f.line key || (f.anchor > 0 && waived_at f.anchor key)
            then { f with waived = true }
            else f)
    findings

(* ---- per-file analysis ------------------------------------------------- *)

let read_source path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception End_of_file -> None)

type file_result = {
  fr_findings : finding list;
  fr_closures : int list;
  fr_cache_hit : bool;
  fr_typecheck_s : float;
  fr_rules_s : float;
  fr_cache_s : float;
}

let src_digest_of ~(plan : Project.plan) source =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s\x00%s\x00%b\x00%b" source plan.Project.unit_name
          plan.Project.is_exe plan.Project.mli_exists))

let missing_mli_finding file =
  {
    rule = Missing_mli;
    file;
    line = 1;
    col = 0;
    anchor = 0;
    msg =
      "module has no .mli interface; add one or waive with (* opera-lint: \
       mli *)";
    waived = false;
  }

let failure_finding rule file (e : Typed.error) =
  {
    rule;
    file;
    line = e.Typed.err_line;
    col = e.Typed.err_col;
    anchor = 0;
    msg = e.Typed.err_msg;
    waived = false;
  }

(* Analyze one source string against a compilation plan: typecheck, run
   the rule passes, apply waivers.  Used directly by tests (no cache)
   and by [analyze_file] below. *)
let lint_source cfg ~(plan : Project.plan) source :
    finding list * int list * float * float =
  let file = plan.Project.rel_path in
  let tt = Util.Timer.start () in
  (* The rule passes expand types through the typing environment, which
     touches the same compiler-libs globals as the typechecker, so they
     run inside [analyze]'s continuation (still holding its lock). *)
  let (findings, closures), rules_s =
    Typed.analyze ~plan source ~k:(fun outcome ->
        let rt = Util.Timer.start () in
        let r =
          match outcome with
          | Typed.Typed tstr ->
              Rules.run_passes cfg ~file ~is_exe:plan.Project.is_exe tstr
          | Typed.Parse_error e -> ([ failure_finding Parse_failure file e ], [])
          | Typed.Type_error e -> ([ failure_finding Type_failure file e ], [])
        in
        (r, Util.Timer.elapsed_s rt))
  in
  let typecheck_s = Util.Timer.elapsed_s tt -. rules_s in
  let findings =
    if cfg.check_mli && (not plan.Project.is_exe) && not plan.Project.mli_exists
    then missing_mli_finding file :: findings
    else findings
  in
  let findings = apply_waivers (split_lines source) findings in
  let findings = List.sort_uniq finding_order findings in
  (findings, closures, typecheck_s, rules_s)

let analyze_file cfg ~cache_dir ~project rel : file_result =
  let root = Project.root project in
  let abs = Filename.concat root rel in
  let plan =
    match Project.plan_for project rel with
    | Some p -> p
    | None -> Project.orphan_plan project ~rel_path:rel
  in
  match read_source abs with
  | None ->
      {
        fr_findings =
          [
            {
              rule = Parse_failure;
              file = rel;
              line = 1;
              col = 0;
              anchor = 0;
              msg = "source file unreadable";
              waived = false;
            };
          ];
        fr_closures = [];
        fr_cache_hit = false;
        fr_typecheck_s = 0.;
        fr_rules_s = 0.;
        fr_cache_s = 0.;
      }
  | Some source -> (
      let src_digest = src_digest_of ~plan source in
      let cfg_digest =
        Digest.to_hex (Digest.string (Rules.config_digest_input cfg))
      in
      let ct = Util.Timer.start () in
      let cached =
        match cache_dir with
        | None -> None
        | Some dir ->
            Cache.load ~dir ~rel_path:rel ~src_digest ~cfg_digest
      in
      let cache_s = Util.Timer.elapsed_s ct in
      match cached with
      | Some entry ->
          {
            fr_findings = entry.Cache.findings;
            fr_closures = entry.Cache.race_closures;
            fr_cache_hit = true;
            fr_typecheck_s = 0.;
            fr_rules_s = 0.;
            fr_cache_s = cache_s;
          }
      | None ->
          let findings, closures, typecheck_s, rules_s =
            lint_source cfg ~plan source
          in
          let ct2 = Util.Timer.start () in
          (match cache_dir with
          | None -> ()
          | Some dir ->
              Cache.store ~dir ~rel_path:rel ~src_digest ~cfg_digest
                { Cache.findings; race_closures = closures });
          {
            fr_findings = findings;
            fr_closures = closures;
            fr_cache_hit = false;
            fr_typecheck_s = typecheck_s;
            fr_rules_s = rules_s;
            fr_cache_s = cache_s +. Util.Timer.elapsed_s ct2;
          })

(* ---- file collection --------------------------------------------------- *)

let collect ~root paths =
  let acc = ref [] in
  let rec visit rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then begin
      let entries = Sys.readdir abs in
      Array.sort compare entries;
      Array.iter
        (fun e ->
          if
            String.length e > 0 && e.[0] <> '.' && e.[0] <> '_'
            && e <> "lint_fixtures"
          then visit (Filename.concat rel e))
        entries
    end
    else if Filename.check_suffix rel ".ml" && Sys.file_exists abs then
      acc := rel :: !acc
  in
  List.iter visit paths;
  List.rev !acc

(* ---- project run ------------------------------------------------------- *)

type run_result = {
  files_scanned : int;
  findings : finding list;
  race : Report.race_stats;
  cache : Report.cache_stats;
  timings : Report.timings;
}

let race_stats_of results =
  let closures = ref 0 and proven = ref 0 and waived_closures = ref 0 in
  List.iter
    (fun fr ->
      List.iter
        (fun head ->
          incr closures;
          let in_closure =
            List.filter
              (fun (f : finding) -> f.rule = Domain_race && f.anchor = head)
              fr.fr_findings
          in
          if in_closure = [] then incr proven
          else if List.for_all (fun (f : finding) -> f.waived) in_closure then
            incr waived_closures)
        fr.fr_closures)
    results;
  {
    Report.closures = !closures;
    proven = !proven;
    waived_closures = !waived_closures;
  }

let run ?(config = default_config) ?cache_dir ?(root = ".") paths : run_result =
  let total = Util.Timer.start () in
  let project = Project.scan ~root in
  let files = Array.of_list (collect ~root:(Project.root project) paths) in
  let n = Array.length files in
  let results = Array.make n None in
  Util.Parallel.for_chunks n (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        results.(i) <- Some (analyze_file config ~cache_dir ~project files.(i))
      done);
  let results =
    Array.to_list results
    |> List.filter_map (fun r -> r)
  in
  let findings =
    List.concat_map (fun fr -> fr.fr_findings) results
    |> List.sort_uniq finding_order
  in
  let cache =
    List.fold_left
      (fun (acc : Report.cache_stats) fr ->
        if fr.fr_cache_hit then { acc with Report.hits = acc.Report.hits + 1 }
        else { acc with Report.misses = acc.Report.misses + 1 })
      Report.zero_cache results
  in
  let typecheck_s =
    List.fold_left (fun a fr -> a +. fr.fr_typecheck_s) 0. results
  in
  let rules_s = List.fold_left (fun a fr -> a +. fr.fr_rules_s) 0. results in
  let cache_s = List.fold_left (fun a fr -> a +. fr.fr_cache_s) 0. results in
  {
    files_scanned = n;
    findings;
    race = race_stats_of results;
    cache;
    timings =
      {
        Report.total_s = Util.Timer.elapsed_s total;
        typecheck_s;
        rules_s;
        cache_s;
      };
  }
