(* opera-lint: mli — the finding list and config records are internal to the tool. *)
(* opera-lint — a compiler-libs static-analysis pass over the OPERA
   library sources.

   The Galerkin/PCE kernels are exactly the code where an exact float
   compare, a swallowed exception, or a shared-mutable capture inside a
   [Util.Parallel] domain closure corrupts results without failing a
   test.  This engine parses every [lib/**/*.ml] into a Parsetree
   (compiler-libs, same compiler the build uses, so anything that builds
   also parses here) and runs a rule catalogue over it:

   R1 [exact-float]     — exact [=] / [<>] / [==] / [!=] comparisons where
                          either operand is syntactically a float (float
                          literal, float arithmetic, [Float.*] call).
                          Use [Util.Floats.is_zero]/[equal_exact] for
                          intent-revealing guards, or waive.
   R2 [domain-race]     — heuristic race detector: mutation of
                          closure-captured refs / arrays / [Hashtbl] /
                          [Buffer] / [Metrics] registries inside a
                          function literal passed to a [Util.Parallel]
                          entry point.  Captured-array writes (the
                          disjoint-slice idiom of the PR-1 kernels) are
                          permitted in files on [race_allowlist].
   R3 [banned-construct] — [Obj.magic], [exit], stdout printing
                          ([print_string] & friends, [Printf.printf],
                          [Format.printf]) in library code (route
                          through [Util.Log] or return strings), and
                          catch-all [try ... with _ ->] that discards
                          the exception.
   R4 [unsafe-index]    — [Array.unsafe_get]/[unsafe_set] (and Bytes /
                          String / Float.Array variants) outside the
                          explicit hot-kernel [unsafe_allowlist].
   R5 [missing-mli]     — every [lib/] module must ship a [.mli].

   Waivers: a finding on line L is waived when line L or L-1 carries a
   comment [(* opera-lint: <key> *)] with the rule's key (exact, race,
   banned, unsafe, mli; several keys may share one comment), or — for R1
   — when the comparison expression carries an [[@opera.exact]]
   attribute.  Waived findings are counted and reported but do not fail
   the run; the exit code is 1 iff any unwaived finding exists. *)

module P = Parsetree

(* ------------------------------------------------------------------ *)
(* Rules, findings, configuration                                     *)
(* ------------------------------------------------------------------ *)

type rule =
  | Exact_float
  | Domain_race
  | Banned
  | Unsafe_index
  | Missing_mli
  | Parse_failure

let all_rules = [ Exact_float; Domain_race; Banned; Unsafe_index; Missing_mli; Parse_failure ]

let rule_id = function
  | Exact_float -> "exact-float"
  | Domain_race -> "domain-race"
  | Banned -> "banned-construct"
  | Unsafe_index -> "unsafe-index"
  | Missing_mli -> "missing-mli"
  | Parse_failure -> "parse-error"

(* The keyword accepted in an [(* opera-lint: ... *)] waiver comment.
   Parse failures cannot be waived: unparseable code cannot be linted. *)
let waiver_key = function
  | Exact_float -> Some "exact"
  | Domain_race -> Some "race"
  | Banned -> Some "banned"
  | Unsafe_index -> Some "unsafe"
  | Missing_mli -> Some "mli"
  | Parse_failure -> None

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  msg : string;
  waived : bool;
}

type config = {
  unsafe_allowlist : string list;
      (* basenames of hot-kernel files where R4 unsafe indexing is
         permitted outright (use sparingly; prefer bounds-checked). *)
  race_allowlist : string list;
      (* basenames whose captured-array writes inside parallel closures
         are trusted as disjoint-slice kernels (R2 still flags captured
         refs / Hashtbl / Metrics mutation in these files). *)
  check_mli : bool;
}

let default_config =
  {
    unsafe_allowlist = [ "sparse.ml" ];
    (* The domain-parallel kernels: every captured-array write is a
       disjoint slice indexed by the parallel chunk/block/row index —
       the PR-1 Galerkin kernels plus the level-scheduled triangular
       sweeps ([sparse_cholesky.ml]: each level writes [work]/[b] only
       at its own rows, and the permutation keeps the [b] slots
       disjoint).  The batch engine is deliberately NOT here: its one
       fan-out closure carries an inline [(* opera-lint: race *)]
       waiver instead of a whole-file exemption. *)
    race_allowlist =
      [ "galerkin.ml"; "galerkin_op.ml"; "special_case.ml"; "sparse_cholesky.ml"; "st_solver.ml" ];
    check_mli = true;
  }

(* ------------------------------------------------------------------ *)
(* Small AST helpers                                                  *)
(* ------------------------------------------------------------------ *)

let loc_pos (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let ident_path (e : P.expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (Longident.flatten txt) | _ -> None

(* Last two components of an ident path: [Util.Parallel.for_chunks] ->
   ("Parallel", "for_chunks"); [incr] -> ("", "incr"). *)
let last_two path =
  match List.rev path with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

let path_is e expected = match ident_path e with Some p -> p = expected | None -> false

module StrSet = Set.Make (String)

(* All value names bound by a pattern (vars and aliases, at any depth). *)
let pat_vars (p : P.pattern) =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  iter.pat iter p;
  !acc

let add_vars vars env = List.fold_left (fun acc v -> StrSet.add v acc) env vars

(* ------------------------------------------------------------------ *)
(* R1 — syntactic "this is a float" heuristic                         *)
(* ------------------------------------------------------------------ *)

let float_binops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_stdlib_fns =
  [
    "sqrt"; "exp"; "log"; "log10"; "log1p"; "expm1"; "cos"; "sin"; "tan"; "acos"; "asin";
    "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float"; "mod_float";
    "float_of_int"; "float_of_string"; "ldexp"; "copysign"; "hypot"; "min_float"; "max_float";
    "infinity"; "nan"; "epsilon_float";
  ]

(* [Float.*] members that do NOT return float (predicates etc.) — calls
   to anything else under [Float] are treated as float-valued. *)
let float_module_non_float =
  [
    "to_int"; "to_string"; "compare"; "equal"; "is_nan"; "is_finite"; "is_integer"; "hash";
    "sign_bit";
  ]

let rec is_floatish (e : P.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (inner, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
      ignore inner;
      true
  | Pexp_constraint (inner, _) -> is_floatish inner
  | Pexp_ifthenelse (_, a, Some b) -> is_floatish a || is_floatish b
  | Pexp_sequence (_, b) -> is_floatish b
  | Pexp_let (_, _, body) -> is_floatish body
  | Pexp_ident { txt = Lident n; _ } -> List.mem n float_stdlib_fns
  | Pexp_ident { txt = Ldot (Lident "Float", n); _ } -> not (List.mem n float_module_non_float)
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ op ] when List.mem op float_binops -> true
      | Some [ fn ] when List.mem fn float_stdlib_fns -> true
      | Some [ "Float"; fn ] -> not (List.mem fn float_module_non_float)
      | Some [ op ] when op = "~-" || op = "~+" ->
          (* Unary minus distributes over the operand's type. *)
          List.exists (fun (_, a) -> is_floatish a) args
      | _ -> false)
  | _ -> false

let compare_ops = [ "="; "<>"; "=="; "!=" ]

(* ------------------------------------------------------------------ *)
(* R3 — banned constructs                                             *)
(* ------------------------------------------------------------------ *)

let banned_paths =
  [
    ([ "Obj"; "magic" ], "Obj.magic defeats the type system");
    ([ "Stdlib"; "Obj"; "magic" ], "Obj.magic defeats the type system");
    ([ "exit" ], "exit in library code; return a result or raise");
    ([ "Stdlib"; "exit" ], "exit in library code; return a result or raise");
    ([ "print_string" ], "stdout printing in library code; route through Util.Log or return the string");
    ([ "print_endline" ], "stdout printing in library code; route through Util.Log or return the string");
    ([ "print_newline" ], "stdout printing in library code; route through Util.Log or return the string");
    ([ "print_char" ], "stdout printing in library code; route through Util.Log or return the string");
    ([ "print_int" ], "stdout printing in library code; route through Util.Log or return the string");
    ([ "print_float" ], "stdout printing in library code; route through Util.Log or return the string");
    ([ "Printf"; "printf" ], "Printf.printf in library code; route through Util.Log or return the string");
    ([ "Format"; "printf" ], "Format.printf in library code; route through Util.Log or return the string");
    ([ "Format"; "print_string" ], "Format.print_string in library code; route through Util.Log or return the string");
  ]

(* ------------------------------------------------------------------ *)
(* R4 — unsafe indexing                                               *)
(* ------------------------------------------------------------------ *)

let unsafe_paths =
  [
    [ "Array"; "unsafe_get" ]; [ "Array"; "unsafe_set" ];
    [ "Bytes"; "unsafe_get" ]; [ "Bytes"; "unsafe_set" ];
    [ "String"; "unsafe_get" ];
    [ "Float"; "Array"; "unsafe_get" ]; [ "Float"; "Array"; "unsafe_set" ];
  ]

(* ------------------------------------------------------------------ *)
(* R2 — domain-race heuristic                                         *)
(* ------------------------------------------------------------------ *)

let parallel_entry e =
  match ident_path e with
  | Some path -> (
      match last_two path with
      | Some ("Parallel", ("parallel_for" | "for_chunks")) -> true
      | _ -> false)
  | None -> false

let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace"; "add_seq"; "replace_seq" ]

let metrics_mutators = [ "incr"; "observe"; "span"; "start_span"; "stop_span"; "reset"; "write_file" ]

let buffer_mutators =
  [ "add_string"; "add_char"; "add_bytes"; "add_substring"; "add_buffer"; "clear"; "reset"; "truncate" ]

(* Root identifier of an lvalue-ish expression: follows record fields
   and [Array.get]-style projections down to the base identifier.
   [`Simple x] — a plain local/captured name; [`Qualified] — a
   module-qualified path, i.e. module-level (hence shared) state. *)
let rec lvalue_root (e : P.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } -> Some (`Simple x)
  | Pexp_ident _ -> Some `Qualified
  | Pexp_field (inner, _) -> lvalue_root inner
  | Pexp_apply (f, (_, first) :: _) -> (
      match ident_path f with
      | Some p when
          (match last_two p with
          | Some (("Array" | "String" | "Bytes"), "get") -> true
          | Some ("", "!") -> true
          | _ -> false) ->
          lvalue_root first
      | _ -> None)
  | _ -> None

let captured env e =
  match lvalue_root e with
  | Some (`Simple x) -> not (StrSet.mem x env)
  | Some `Qualified -> true
  | None -> false

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cfg : config;
  file : string; (* path as reported *)
  base : string; (* basename, for allowlists *)
  mutable found : finding list;
}

let report ctx rule (loc : Location.t) ?(waived = false) msg =
  let line, col = loc_pos loc in
  ctx.found <- { rule; file = ctx.file; line; col; msg; waived } :: ctx.found

let has_attr name (attrs : P.attributes) =
  List.exists (fun (a : P.attribute) -> a.attr_name.txt = name) attrs

(* --- R2: scan the body of a closure passed to Util.Parallel --------- *)

let race_scan ctx env0 (body : P.expression) =
  let array_writes_allowed = List.mem ctx.base ctx.cfg.race_allowlist in
  let rec scan env (e : P.expression) =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
        let bound = List.concat_map (fun (vb : P.value_binding) -> pat_vars vb.pvb_pat) vbs in
        let env_rhs = if rf = Asttypes.Recursive then add_vars bound env else env in
        List.iter (fun (vb : P.value_binding) -> scan env_rhs vb.pvb_expr) vbs;
        scan (add_vars bound env) body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (scan env) default;
        scan (add_vars (pat_vars pat) env) body
    | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, e1, e2, _, body) ->
        scan env e1;
        scan env e2;
        scan (StrSet.add txt env) body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        scan env scrut;
        List.iter
          (fun (c : P.case) ->
            let env' = add_vars (pat_vars c.pc_lhs) env in
            Option.iter (scan env') c.pc_guard;
            scan env' c.pc_rhs)
          cases
    | Pexp_setfield (obj, _, v) ->
        if captured env obj then
          report ctx Domain_race e.pexp_loc
            "mutates a field of closure-captured state inside a parallel closure";
        scan env obj;
        scan env v
    | Pexp_apply (f, args) ->
        check_call env e f args;
        scan env f;
        List.iter (fun (_, a) -> scan env a) args
    | _ ->
        (* Generic descent with the same environment.  Binders of exotic
           forms (letop, letmodule, ...) are not tracked — acceptable
           for a heuristic aimed at numeric kernels. *)
        let sub =
          { Ast_iterator.default_iterator with expr = (fun _self e' -> scan env e') }
        in
        Ast_iterator.default_iterator.expr sub e
  and check_call env (app : P.expression) f args =
    let nth_arg k = match List.nth_opt args k with Some (_, a) -> Some a | None -> None in
    let arg_captured k = match nth_arg k with Some a -> captured env a | None -> false in
    match ident_path f with
    | Some [ (":=" | "incr" | "decr") ] when arg_captured 0 ->
        report ctx Domain_race app.pexp_loc
          "mutates a closure-captured ref inside a parallel closure"
    | Some p -> (
        match last_two p with
        | Some (("Array" | "Floatarray"), ("set" | "fill")) when arg_captured 0 ->
            if not array_writes_allowed then
              report ctx Domain_race app.pexp_loc
                "writes a closure-captured array inside a parallel closure (allowlist the \
                 file if every write is a disjoint slice)"
        | Some ("Array", "blit") when arg_captured 2 ->
            if not array_writes_allowed then
              report ctx Domain_race app.pexp_loc
                "blits into a closure-captured array inside a parallel closure (allowlist \
                 the file if every write is a disjoint slice)"
        | Some ("Hashtbl", fn) when List.mem fn hashtbl_mutators ->
            report ctx Domain_race app.pexp_loc
              (Printf.sprintf "Hashtbl.%s on shared state inside a parallel closure" fn)
        | Some ("Metrics", fn) when List.mem fn metrics_mutators ->
            report ctx Domain_race app.pexp_loc
              (Printf.sprintf
                 "Metrics.%s inside a parallel closure (registries are not thread-safe; \
                  record from the calling domain only)"
                 fn)
        | Some ("Buffer", fn) when List.mem fn buffer_mutators && arg_captured 0 ->
            report ctx Domain_race app.pexp_loc
              (Printf.sprintf "Buffer.%s on a closure-captured buffer inside a parallel closure" fn)
        | _ -> ())
    | None -> ()
  in
  scan env0 body

(* Peel the [fun p1 p2 ... -> body] chain of a closure literal,
   returning the parameter-bound environment and the body. *)
let rec peel_fun env (e : P.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> peel_fun (add_vars (pat_vars pat) env) body
  | Pexp_newtype (_, body) -> peel_fun env body
  | _ -> (env, e)

(* --- Main expression walk (R1, R2 entry, R3, R4) ------------------- *)

let walk_structure ctx (str : P.structure) =
  let expr_rule (e : P.expression) =
    (match e.pexp_desc with
    (* R1 — exact float comparison. *)
    | Pexp_apply (op, [ (_, a); (_, b) ]) -> (
        match ident_path op with
        | Some [ o ] when List.mem o compare_ops && (is_floatish a || is_floatish b) ->
            let waived = has_attr "opera.exact" e.pexp_attributes in
            report ctx Exact_float e.pexp_loc ~waived
              (Printf.sprintf
                 "exact float `%s` comparison; use Util.Floats.(is_zero|nonzero|equal_exact) \
                  or a tolerance, or waive with (* opera-lint: exact *) / [@opera.exact]"
                 o)
        | _ -> ())
    | _ -> ());
    (match e.pexp_desc with
    (* R3 — catch-all try that discards the exception. *)
    | Pexp_try (_, cases) ->
        List.iter
          (fun (c : P.case) ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                report ctx Banned c.pc_lhs.ppat_loc
                  "catch-all `try ... with _ ->` discards the exception; match specific \
                   exceptions or bind and log it"
            | _ -> ())
          cases
    | _ -> ());
    match e.pexp_desc with
    (* R3/R4 — banned or unsafe identifiers (flagged wherever they are
       referenced, including partial application / function arguments). *)
    | Pexp_ident _ -> (
        match ident_path e with
        | Some p -> (
            (match List.assoc_opt p banned_paths with
            | Some why -> report ctx Banned e.pexp_loc why
            | None -> ());
            if List.mem p unsafe_paths && not (List.mem ctx.base ctx.cfg.unsafe_allowlist) then
              report ctx Unsafe_index e.pexp_loc
                (Printf.sprintf
                   "%s outside the hot-kernel allowlist; use bounds-checked access or \
                    allowlist the file"
                   (String.concat "." p)))
        | None -> ())
    (* R2 — closure literal handed to a Util.Parallel entry point. *)
    | Pexp_apply (f, args) when parallel_entry f ->
        List.iter
          (fun ((_, a) : Asttypes.arg_label * P.expression) ->
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_newtype _ ->
                let env, body = peel_fun StrSet.empty a in
                race_scan ctx env body
            | _ -> ())
          args
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          expr_rule e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter str

(* ------------------------------------------------------------------ *)
(* Waiver comments                                                    *)
(* ------------------------------------------------------------------ *)

let split_lines s =
  let lines = String.split_on_char '\n' s in
  Array.of_list lines

(* Does [line] carry an [(* opera-lint: ... *)] comment naming [key]?
   Several keys may share one comment: [(* opera-lint: exact race *)]. *)
let line_waives line key =
  let marker = "opera-lint:" in
  let mlen = String.length marker in
  let llen = String.length line in
  let rec find i =
    if i + mlen > llen then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some start ->
      let stop =
        let rec close i =
          if i + 1 >= llen then llen
          else if line.[i] = '*' && line.[i + 1] = ')' then i
          else close (i + 1)
        in
        close start
      in
      let body = String.sub line start (stop - start) in
      let words =
        String.split_on_char ' ' body
        |> List.concat_map (String.split_on_char ',')
        |> List.map String.trim
        |> List.filter (fun w -> w <> "")
      in
      List.mem key words

let apply_waivers lines findings =
  let nlines = Array.length lines in
  let get i = if i >= 1 && i <= nlines then lines.(i - 1) else "" in
  List.map
    (fun f ->
      if f.waived then f
      else
        match waiver_key f.rule with
        | None -> f
        | Some key ->
            if line_waives (get f.line) key || line_waives (get (f.line - 1)) key then
              { f with waived = true }
            else f)
    findings

(* ------------------------------------------------------------------ *)
(* Driving: files, directories, reports                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_source cfg ~filename ?(mli_exists = true) source =
  let ctx = { cfg; file = filename; base = Filename.basename filename; found = [] } in
  let lines = split_lines source in
  (if cfg.check_mli && not mli_exists then
     ctx.found <-
       {
         rule = Missing_mli;
         file = filename;
         line = 1;
         col = 0;
         msg = "module has no .mli interface; add one or waive with (* opera-lint: mli *)";
         waived = false;
       }
       :: ctx.found);
  (try
     let lexbuf = Lexing.from_string source in
     Location.init lexbuf filename;
     let str = Parse.implementation lexbuf in
     walk_structure ctx str
   with exn ->
     let line, col, detail =
       match exn with
       | Syntaxerr.Error err ->
           let loc = Syntaxerr.location_of_error err in
           let l, c = loc_pos loc in
           (l, c, "syntax error")
       | e -> (1, 0, Printexc.to_string e)
     in
     ctx.found <-
       {
         rule = Parse_failure;
         file = filename;
         line;
         col;
         msg = Printf.sprintf "failed to parse: %s" detail;
         waived = false;
       }
       :: ctx.found);
  apply_waivers lines ctx.found

let lint_file cfg path =
  let source = read_file path in
  let mli_exists = Sys.file_exists (Filename.remove_extension path ^ ".mli") in
  lint_source cfg ~filename:path ~mli_exists source

(* Collect .ml files (sorted, recursive) under each root; a root may
   also name a single file. *)
let collect paths =
  let acc = ref [] in
  let rec visit p =
    if Sys.is_directory p then
      Sys.readdir p |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             if entry <> "" && entry.[0] <> '.' && entry <> "_build" then
               visit (Filename.concat p entry))
    else if Filename.check_suffix p ".ml" then acc := p :: !acc
  in
  List.iter visit paths;
  List.rev !acc

let finding_order (a : finding) (b : finding) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (rule_id a.rule) (rule_id b.rule) in
        if c <> 0 then c else String.compare a.msg b.msg

let run cfg paths =
  let files = collect paths in
  let findings = List.concat_map (lint_file cfg) files in
  let findings = List.sort_uniq finding_order findings in
  (List.length files, findings)

(* --- Summaries ----------------------------------------------------- *)

type summary = {
  total : int;
  unwaived : int;
  waived : int;
  per_rule : (string * (int * int)) list; (* rule-id -> (unwaived, waived) *)
}

let summarize findings =
  let tally rule =
    let u, w =
      List.fold_left
        (fun (u, w) f ->
          if f.rule <> rule then (u, w) else if f.waived then (u, w + 1) else (u + 1, w))
        (0, 0) findings
    in
    (rule_id rule, (u, w))
  in
  let per_rule = List.map tally all_rules in
  let unwaived = List.fold_left (fun a (_, (u, _)) -> a + u) 0 per_rule in
  let waived = List.fold_left (fun a (_, (_, w)) -> a + w) 0 per_rule in
  { total = unwaived + waived; unwaived; waived; per_rule }

let exit_code findings = if (summarize findings).unwaived > 0 then 1 else 0

(* --- Human report -------------------------------------------------- *)

let human_report ?(verbose = false) ~files_scanned findings =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : finding) ->
      if (not f.waived) || verbose then
        Buffer.add_string buf
          (Printf.sprintf "%s:%d:%d: [%s]%s %s\n" f.file f.line f.col (rule_id f.rule)
             (if f.waived then " (waived)" else "")
             f.msg))
    findings;
  let s = summarize findings in
  Buffer.add_string buf
    (Printf.sprintf "opera-lint: %d file(s), %d finding(s): %d unwaived, %d waived\n"
       files_scanned s.total s.unwaived s.waived);
  List.iter
    (fun (id, (u, w)) ->
      if u + w > 0 then
        Buffer.add_string buf (Printf.sprintf "  %-16s unwaived %d, waived %d\n" id u w))
    s.per_rule;
  Buffer.contents buf

(* --- JSON report (deterministic: fixed key order, sorted findings) -- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_report ?(config = default_config) ~files_scanned findings =
  let s = summarize findings in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"tool\": \"opera-lint\",\n";
  Buffer.add_string buf "  \"version\": 1,\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" files_scanned);
  Buffer.add_string buf
    (Printf.sprintf "  \"summary\": { \"total\": %d, \"unwaived\": %d, \"waived\": %d },\n"
       s.total s.unwaived s.waived);
  Buffer.add_string buf "  \"rules\": {\n";
  let nrules = List.length s.per_rule in
  List.iteri
    (fun i (id, (u, w)) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": { \"unwaived\": %d, \"waived\": %d }%s\n" id u w
           (if i = nrules - 1 then "" else ",")))
    s.per_rule;
  Buffer.add_string buf "  },\n";
  (* The per-file allowlists are config, not findings — but a reviewer
     auditing the report needs to see which files are exempt from R2/R4,
     so the active lists are recorded verbatim (sorted for determinism). *)
  let string_list names =
    String.concat ", "
      (List.map (fun f -> Printf.sprintf "\"%s\"" (json_escape f)) (List.sort compare names))
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"allowlists\": { \"race\": [%s], \"unsafe\": [%s] },\n"
       (string_list config.race_allowlist)
       (string_list config.unsafe_allowlist));
  Buffer.add_string buf "  \"findings\": [\n";
  let n = List.length findings in
  List.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \"waived\": \
            %b, \"message\": \"%s\" }%s\n"
           (rule_id f.rule) (json_escape f.file) f.line f.col f.waived (json_escape f.msg)
           (if i = n - 1 then "" else ",")))
    findings;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf
