(** Incremental lint cache: one checksummed [Util.Codec] frame per
    analyzed file, keyed by (source digest, rule-config digest).
    Corrupt or stale entries behave as misses and are removed. *)

type entry = {
  findings : Lint_rules.finding list;
  race_closures : int list;  (** head lines of R2-analyzed closures *)
}

val load :
  dir:string ->
  rel_path:string ->
  src_digest:string ->
  cfg_digest:string ->
  entry option
(** Probe the cache; [None] on miss, digest mismatch, or corruption
    (never raises). *)

val store :
  dir:string ->
  rel_path:string ->
  src_digest:string ->
  cfg_digest:string ->
  entry ->
  unit
(** Write an entry atomically (temp + rename via [Util.Codec]).
    Creates [dir] if needed; I/O failures are swallowed (the cache is
    best-effort). *)

val file_for : dir:string -> rel_path:string -> string
(** Cache file path used for a source, exposed for tests. *)
