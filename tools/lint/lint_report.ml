(* Report emitters: human text, LINT_report.json v2, SARIF 2.1.0.

   The JSON report is deterministic (fixed key order, findings sorted
   by the engine) except for the timing block, which records real
   wall-clock seconds; schema validation treats timings as opaque
   non-negative numbers. *)

open Lint_rules

type race_stats = { closures : int; proven : int; waived_closures : int }

type cache_stats = { hits : int; misses : int }

type timings = {
  total_s : float;
  typecheck_s : float;
  rules_s : float;
  cache_s : float;
}

let zero_race = { closures = 0; proven = 0; waived_closures = 0 }
let zero_cache = { hits = 0; misses = 0 }
let zero_timings = { total_s = 0.; typecheck_s = 0.; rules_s = 0.; cache_s = 0. }

(* ---- ordering & summary ----------------------------------------------- *)

let finding_order (a : finding) (b : finding) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (rule_id a.rule) (rule_id b.rule) in
        if c <> 0 then c else String.compare a.msg b.msg

type summary = {
  total : int;
  unwaived : int;
  waived : int;
  per_rule : (string * (int * int)) list; (* rule-id -> (unwaived, waived) *)
}

let summarize findings =
  let tally rule =
    let u, w =
      List.fold_left
        (fun (u, w) f ->
          if f.rule <> rule then (u, w)
          else if f.waived then (u, w + 1)
          else (u + 1, w))
        (0, 0) findings
    in
    (rule_id rule, (u, w))
  in
  let per_rule = List.map tally all_rules in
  let unwaived = List.fold_left (fun a (_, (u, _)) -> a + u) 0 per_rule in
  let waived = List.fold_left (fun a (_, (_, w)) -> a + w) 0 per_rule in
  { total = unwaived + waived; unwaived; waived; per_rule }

let exit_code findings = if (summarize findings).unwaived > 0 then 1 else 0

(* ---- human report ----------------------------------------------------- *)

let human_report ?(verbose = false) ~files_scanned ~race ~cache findings =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : finding) ->
      if (not f.waived) || verbose then
        Buffer.add_string buf
          (Printf.sprintf "%s:%d:%d: [%s]%s %s\n" f.file f.line f.col
             (rule_id f.rule)
             (if f.waived then " (waived)" else "")
             f.msg))
    findings;
  let s = summarize findings in
  Buffer.add_string buf
    (Printf.sprintf
       "opera-lint: %d file(s), %d finding(s): %d unwaived, %d waived\n"
       files_scanned s.total s.unwaived s.waived);
  List.iter
    (fun (id, (u, w)) ->
      if u + w > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-16s unwaived %d, waived %d\n" id u w))
    s.per_rule;
  Buffer.add_string buf
    (Printf.sprintf
       "  parallel closures: %d analyzed, %d proven disjoint, %d waived\n"
       race.closures race.proven race.waived_closures);
  Buffer.add_string buf
    (Printf.sprintf "  cache: %d hit(s), %d miss(es)\n" cache.hits cache.misses);
  Buffer.contents buf

(* ---- LINT_report.json v2 ---------------------------------------------- *)

let json_escape = Util.Json.escape

let json_report ?(config = default_config) ~files_scanned ~race ~cache
    ~timings findings =
  let s = summarize findings in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"tool\": \"opera-lint\",\n";
  Buffer.add_string buf "  \"version\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"files_scanned\": %d,\n" files_scanned);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": { \"total\": %d, \"unwaived\": %d, \"waived\": %d },\n"
       s.total s.unwaived s.waived);
  Buffer.add_string buf "  \"rules\": {\n";
  let nrules = List.length s.per_rule in
  List.iteri
    (fun i (id, (u, w)) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": { \"unwaived\": %d, \"waived\": %d }%s\n"
           id u w
           (if i = nrules - 1 then "" else ",")))
    s.per_rule;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"race\": { \"closures\": %d, \"proven\": %d, \"waived_closures\": \
        %d },\n"
       race.closures race.proven race.waived_closures);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache\": { \"hits\": %d, \"misses\": %d },\n"
       cache.hits cache.misses);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"timings_s\": { \"total\": %.6f, \"typecheck\": %.6f, \"rules\": \
        %.6f, \"cache\": %.6f },\n"
       timings.total_s timings.typecheck_s timings.rules_s timings.cache_s);
  let string_list names =
    String.concat ", "
      (List.map
         (fun f -> Printf.sprintf "\"%s\"" (json_escape f))
         (List.sort compare names))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"allowlists\": { \"unsafe\": [%s], \"clock\": [%s] },\n"
       (string_list config.unsafe_allowlist)
       (string_list config.clock_allowlist));
  Buffer.add_string buf "  \"findings\": [\n";
  let n = List.length findings in
  List.iteri
    (fun i (f : finding) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": \
            %d, \"waived\": %b, \"message\": \"%s\" }%s\n"
           (rule_id f.rule) (json_escape f.file) f.line f.col f.waived
           (json_escape f.msg)
           (if i = n - 1 then "" else ",")))
    findings;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---- SARIF 2.1.0 ------------------------------------------------------ *)

let rule_help = function
  | Exact_float -> "Exact float comparison; use Util.Floats."
  | Domain_race ->
      "Unproven write to captured state inside a Util.Parallel closure."
  | Banned_construct -> "Banned construct (Obj.magic, catch-all try, prints)."
  | Unsafe_index -> "Unsafe (unchecked) array/bytes/string access."
  | Missing_mli -> "Library module without an .mli interface."
  | Determinism ->
      "Nondeterminism source: unordered Hashtbl iteration, ambient Random, \
       raw wall-clock read."
  | Hot_alloc -> "Allocation inside an [@opera.hot] function."
  | Resource_safety -> "Channel open without close on all paths."
  | Parse_failure -> "Source failed to parse."
  | Type_failure -> "Source failed to typecheck."

let sarif_report findings =
  let open Util.Json in
  let driver_rules =
    List
      (List.map
         (fun r ->
           Obj
             [
               ("id", Str (rule_id r));
               ("shortDescription", Obj [ ("text", Str (rule_help r)) ]);
             ])
         all_rules)
  in
  let results =
    List
      (List.map
         (fun (f : finding) ->
           let base =
             [
               ("ruleId", Str (rule_id f.rule));
               ("level", Str (if f.waived then "note" else "error"));
               ("message", Obj [ ("text", Str f.msg) ]);
               ( "locations",
                 List
                   [
                     Obj
                       [
                         ( "physicalLocation",
                           Obj
                             [
                               ( "artifactLocation",
                                 Obj [ ("uri", Str f.file) ] );
                               ( "region",
                                 Obj
                                   [
                                     ("startLine", Num (float_of_int f.line));
                                     ( "startColumn",
                                       Num (float_of_int (f.col + 1)) );
                                   ] );
                             ] );
                       ];
                   ] );
             ]
           in
           let base =
             if f.waived then
               base @ [ ("suppressions", List [ Obj [ ("kind", Str "inSource") ] ]) ]
             else base
           in
           Obj base)
         findings)
  in
  let doc =
    Obj
      [
        ("$schema", Str "https://json.schemastore.org/sarif-2.1.0.json");
        ("version", Str "2.1.0");
        ( "runs",
          List
            [
              Obj
                [
                  ( "tool",
                    Obj
                      [
                        ( "driver",
                          Obj
                            [
                              ("name", Str "opera-lint");
                              ("version", Str "2.0.0");
                              ("rules", driver_rules);
                            ] );
                      ] );
                  ("results", results);
                ];
            ] );
      ]
  in
  render doc
