(* The opera-lint rule catalogue, run over typedtrees.

   Every check keys on the *defining compilation unit* of the resolved
   identifier (from its [Shape.Uid]), not on surface syntax: [=] is
   caught through [let eq = (=)], [Array.unsafe_get] through
   [module A = Array], [Util.Parallel.for_chunks] through any [open].

   R1  exact-float      [=]/[<>]/[==]/[!=] instantiated at [float]
   R2  domain-race      capture analysis of [Util.Parallel] closures
   R3  banned-construct Obj.magic, catch-all try, exit/prints in libs
   R4  unsafe-index     Array/Bytes/String/Float.Array unsafe access
   R5  missing-mli      (engine-level; no typedtree needed)
   R6  determinism      unordered Hashtbl iteration, ambient Random,
                        wall-clock reads outside Util.Timer
   R7  hot-alloc        allocating constructs inside [@opera.hot]
   R8  resource-safety  channel opens that may not close on all paths *)

type rule =
  | Exact_float
  | Domain_race
  | Banned_construct
  | Unsafe_index
  | Missing_mli
  | Determinism
  | Hot_alloc
  | Resource_safety
  | Parse_failure
  | Type_failure

let rule_id = function
  | Exact_float -> "exact-float"
  | Domain_race -> "domain-race"
  | Banned_construct -> "banned-construct"
  | Unsafe_index -> "unsafe-index"
  | Missing_mli -> "missing-mli"
  | Determinism -> "determinism"
  | Hot_alloc -> "hot-alloc"
  | Resource_safety -> "resource-safety"
  | Parse_failure -> "parse-error"
  | Type_failure -> "type-error"

let rule_of_id = function
  | "exact-float" -> Some Exact_float
  | "domain-race" -> Some Domain_race
  | "banned-construct" -> Some Banned_construct
  | "unsafe-index" -> Some Unsafe_index
  | "missing-mli" -> Some Missing_mli
  | "determinism" -> Some Determinism
  | "hot-alloc" -> Some Hot_alloc
  | "resource-safety" -> Some Resource_safety
  | "parse-error" -> Some Parse_failure
  | "type-error" -> Some Type_failure
  | _ -> None

let all_rules =
  [ Exact_float; Domain_race; Banned_construct; Unsafe_index; Missing_mli;
    Determinism; Hot_alloc; Resource_safety; Parse_failure; Type_failure ]

(* Waiver comment key per rule; [None] = unwaivable. *)
let waiver_key = function
  | Exact_float -> Some "exact"
  | Domain_race -> Some "race"
  | Banned_construct -> Some "banned"
  | Unsafe_index -> Some "unsafe"
  | Missing_mli -> Some "mli"
  | Determinism -> Some "order"
  | Hot_alloc -> Some "alloc"
  | Resource_safety -> Some "resource"
  | Parse_failure | Type_failure -> None

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  (* Race findings anchor to the head line of their parallel closure: a
     waiver there covers the whole closure.  0 = no anchor. *)
  anchor : int;
  msg : string;
  waived : bool;
}

type config = {
  unsafe_allowlist : string list; (* basenames allowed to use unsafe_* *)
  clock_allowlist : string list; (* basenames allowed raw wall-clock reads *)
  check_mli : bool;
}

let default_config =
  {
    unsafe_allowlist = [ "sparse.ml" ];
    clock_allowlist = [ "timer.ml" ];
    check_mli = true;
  }

(* Bump when rule behavior changes: part of the cache key, so stale
   cached verdicts are never replayed against a newer catalogue. *)
let catalogue_version = 1

let config_digest_input cfg =
  Printf.sprintf "v%d;unsafe=%s;clock=%s;mli=%b" catalogue_version
    (String.concat "," (List.sort compare cfg.unsafe_allowlist))
    (String.concat "," (List.sort compare cfg.clock_allowlist))
    cfg.check_mli

(* ---- typedtree helpers ------------------------------------------------ *)

open Typedtree

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let uid_comp_unit (uid : Shape.Uid.t) =
  match uid with
  | Shape.Uid.Compilation_unit s -> Some s
  | Shape.Uid.Item { comp_unit; _ } -> Some comp_unit
  | Shape.Uid.Internal | Shape.Uid.Predef _ -> None

(* (defining unit, last path component) of a resolved identifier. *)
let ident_key (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, vd) -> (
      match uid_comp_unit vd.Types.val_uid with
      | Some cu -> Some (cu, Path.last path, path)
      | None -> None)
  | _ -> None

let key_in table e =
  match ident_key e with
  | Some (cu, name, _) -> List.mem (cu, name) table
  | None -> false

let rec path_mem name = function
  | Path.Pident id -> Ident.name id = name
  | Path.Pdot (p, n) -> n = name || path_mem name p
  | Path.Papply (a, b) -> path_mem name a || path_mem name b
  | Path.Pextra_ty (p, _) -> path_mem name p

(* Expand abbreviations ([type t = float array]) so aliases do not
   hide the underlying type.  Touches the typing environment: only
   sound inside [Lint_typed.analyze]'s continuation, where the
   compiler-libs lock is held. *)
let expand env ty =
  try Ctype.expand_head env ty with Ctype.Cannot_expand | Ctype.Escape _ -> ty

let is_float_ty env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_mutable_ty env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_array
      || Path.same p Predef.path_bytes
      || Path.same p Predef.path_floatarray
      || Path.last p = "ref"
  | _ -> false

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

let pattern_var_names pat =
  List.map Ident.unique_name (pat_bound_idents pat)

(* Iterate children of [e], sending every sub-expression to [f]. *)
let iter_children f e =
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ e' -> f e') }
  in
  Tast_iterator.default_iterator.expr it e

(* ---- identifier tables ------------------------------------------------ *)

let stdlib = "Stdlib"

let cmp_ops = [ (stdlib, "="); (stdlib, "<>"); (stdlib, "=="); (stdlib, "!=") ]

let banned_always = [ ("Stdlib__Obj", "magic") ]

let banned_in_lib =
  [
    (stdlib, "exit");
    (stdlib, "print_string");
    (stdlib, "print_endline");
    (stdlib, "print_newline");
    (stdlib, "print_char");
    (stdlib, "print_int");
    (stdlib, "print_float");
    ("Stdlib__Printf", "printf");
    ("Stdlib__Format", "printf");
    ("Stdlib__Format", "print_string");
    ("Stdlib__Format", "print_newline");
  ]

let unsafe_ops =
  List.concat_map
    (fun m -> [ (m, "unsafe_get"); (m, "unsafe_set") ])
    [ "Stdlib__Array"; "Stdlib__Bytes"; "Stdlib__String"; "Stdlib__Float" ]

let hashtbl_unordered =
  List.map
    (fun n -> ("Stdlib__Hashtbl", n))
    [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let sort_calls =
  [
    ("Stdlib__List", "sort"); ("Stdlib__List", "stable_sort");
    ("Stdlib__List", "sort_uniq"); ("Stdlib__List", "fast_sort");
    ("Stdlib__Array", "sort"); ("Stdlib__Array", "stable_sort");
    ("Stdlib__Array", "fast_sort");
  ]

let random_ambient =
  List.map
    (fun n -> ("Stdlib__Random", n))
    [ "self_init"; "bits"; "int"; "full_int"; "int32"; "int64"; "nativeint";
      "float"; "bool"; "bits32"; "bits64" ]

let clock_reads = [ ("Stdlib__Sys", "time"); ("Unix", "gettimeofday"); ("Unix", "time") ]

let parallel_entries =
  [ ("Util__Parallel", "for_chunks"); ("Util__Parallel", "parallel_for") ]

let open_calls =
  [
    (stdlib, "open_in"); (stdlib, "open_in_bin"); (stdlib, "open_in_gen");
    (stdlib, "open_out"); (stdlib, "open_out_bin"); (stdlib, "open_out_gen");
    ("Stdlib__In_channel", "open_bin"); ("Stdlib__In_channel", "open_text");
    ("Stdlib__In_channel", "open_gen");
    ("Stdlib__Out_channel", "open_bin"); ("Stdlib__Out_channel", "open_text");
    ("Stdlib__Out_channel", "open_gen");
    ("Unix", "socket"); ("Unix", "openfile"); ("Unix", "accept");
    ("Unix", "socketpair");
  ]

let close_calls =
  [
    (stdlib, "close_in"); (stdlib, "close_in_noerr");
    (stdlib, "close_out"); (stdlib, "close_out_noerr");
    ("Stdlib__In_channel", "close"); ("Stdlib__In_channel", "close_noerr");
    ("Stdlib__Out_channel", "close"); ("Stdlib__Out_channel", "close_noerr");
    ("Unix", "close");
  ]

let protect_key = [ ("Stdlib__Fun", "protect") ]

let raise_family =
  [ (stdlib, "raise"); (stdlib, "raise_notrace"); (stdlib, "failwith");
    (stdlib, "invalid_arg") ]

(* Closure-taking dispatch scaffolding allowed inside [@opera.hot]
   bodies: the closure is the kernel's own dispatch mechanism, not a
   per-iteration allocation (Parallel entries hoist it per call). *)
let hot_scaffold_units = [ "Util__Parallel"; "Util__Metrics" ]
let hot_scaffold = protect_key

let allocator_calls =
  List.map (fun n -> ("Stdlib__Array", n))
    [ "make"; "create_float"; "init"; "append"; "concat"; "copy"; "sub";
      "of_list"; "to_list"; "make_matrix"; "map"; "mapi"; "map2"; "split";
      "combine"; "of_seq"; "to_seq" ]
  @ List.map (fun n -> ("Stdlib__List", n))
      [ "init"; "map"; "mapi"; "rev"; "rev_append"; "append"; "concat";
        "concat_map"; "filter"; "filter_map"; "sort"; "stable_sort";
        "sort_uniq"; "split"; "combine"; "of_seq"; "to_seq"; "cons" ]
  @ List.map (fun n -> ("Stdlib__String", n))
      [ "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi";
        "split_on_char"; "to_bytes"; "of_bytes" ]
  @ List.map (fun n -> ("Stdlib__Bytes", n))
      [ "create"; "make"; "init"; "sub"; "copy"; "of_string"; "to_string";
        "cat"; "concat"; "extend" ]
  @ List.map (fun n -> ("Stdlib__Buffer", n))
      [ "create"; "contents"; "to_bytes"; "sub" ]
  @ List.map (fun n -> ("Stdlib__Hashtbl", n)) [ "create"; "copy"; "of_seq" ]
  @ [ (stdlib, "ref"); (stdlib, "^"); (stdlib, "@") ]

let alloc_units = [ "Stdlib__Printf"; "Stdlib__Format"; "Stdlib__Seq"; "Stdlib__Scanf" ]

(* ---- pass context ----------------------------------------------------- *)

type ctx = {
  cfg : config;
  file : string; (* as reported in findings *)
  base : string; (* basename, for allowlists *)
  is_exe : bool;
  mutable findings : finding list;
  mutable race_closures : int list; (* head lines of parallel closures *)
}

let report ctx rule ?(anchor = 0) loc fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.findings <-
        { rule; file = ctx.file; line = line_of loc; col = col_of loc;
          anchor; msg; waived = false }
        :: ctx.findings)
    fmt

(* ---- R1/R3/R4/R6: resolved-identifier checks -------------------------- *)

let ident_checks ctx tstr =
  let in_sort = ref false in
  let check_apply e hd args =
    (match ident_key hd with
    | Some (cu, name, path) ->
        let key = (cu, name) in
        (* R1: comparison instantiated at float *)
        if List.mem key cmp_ops && not (has_attr "opera.exact" e.exp_attributes)
        then begin
          let float_arg =
            List.exists
              (fun (_, a) ->
                match a with
                | Some a -> is_float_ty a.exp_env a.exp_type
                | None -> false)
              args
          in
          if float_arg then
            report ctx Exact_float e.exp_loc
              "exact float comparison (%s); use Util.Floats or waive with \
               [@opera.exact]"
              name
        end;
        (* R3: banned constructs *)
        if List.mem key banned_always then
          report ctx Banned_construct e.exp_loc "use of %s is banned"
            (Path.name path);
        if (not ctx.is_exe) && List.mem key banned_in_lib then
          report ctx Banned_construct e.exp_loc
            "%s in library code; route through Util.Log or return a value"
            (Path.name path);
        (* R4: unsafe indexing *)
        if
          List.mem key unsafe_ops
          && not (List.mem ctx.base ctx.cfg.unsafe_allowlist)
        then
          report ctx Unsafe_index e.exp_loc
            "%s without bounds proof; use checked access or waive with 'unsafe'"
            (Path.name path);
        (* R6: determinism *)
        if List.mem key hashtbl_unordered && not !in_sort then
          report ctx Determinism e.exp_loc
            "unordered Hashtbl.%s can leak table order into results; iterate \
             sorted keys (e.g. List.sort (Hashtbl.fold ...)) or waive with \
             'order'"
            name;
        if List.mem key random_ambient && not (path_mem "State" path) then
          report ctx Determinism e.exp_loc
            "ambient Random.%s uses hidden global state; thread an explicit \
             seeded Random.State through instead"
            name;
        if
          List.mem key clock_reads
          && not (List.mem ctx.base ctx.cfg.clock_allowlist)
        then
          report ctx Determinism e.exp_loc
            "wall-clock read %s outside Util.Timer breaks replayable runs; \
             use Util.Timer"
            (Path.name path)
    | None -> ())
  in
  let check_bare_ident e =
    match ident_key e with
    | Some (cu, name, path) ->
        let key = (cu, name) in
        (* R1 on a partially-applied / aliased comparison: the
           instantiated type tells us the element type. *)
        if List.mem key cmp_ops && not (has_attr "opera.exact" e.exp_attributes)
        then begin
          match Types.get_desc e.exp_type with
          | Types.Tarrow (_, t1, _, _) when is_float_ty e.exp_env t1 ->
              report ctx Exact_float e.exp_loc
                "comparison %s instantiated at float; use Util.Floats" name
          | _ -> ()
        end;
        if List.mem key banned_always then
          report ctx Banned_construct e.exp_loc "use of %s is banned"
            (Path.name path);
        if (not ctx.is_exe) && List.mem key banned_in_lib then
          report ctx Banned_construct e.exp_loc
            "%s in library code; route through Util.Log or return a value"
            (Path.name path)
    | None -> ()
  in
  let rec visit e =
    match e.exp_desc with
    | Texp_apply (hd, args) when ident_key hd <> None ->
        check_apply e hd args;
        let sorting = key_in sort_calls hd in
        let saved = !in_sort in
        if sorting then in_sort := true;
        List.iter (fun (_, a) -> Option.iter visit a) args;
        in_sort := saved
    | Texp_ident _ -> check_bare_ident e
    | Texp_try (_, cases) ->
        (* Cleanup-and-rethrow is fine: a handler that re-raises the
           exception it bound on every result path swallows nothing. *)
        let rec reraises id e =
          match e.exp_desc with
          | Texp_apply (hd, args) -> (
              match ident_key hd with
              | Some ("Stdlib", ("raise" | "raise_notrace"), _) ->
                  List.exists
                    (fun (_, a) ->
                      match a with
                      | Some
                          { exp_desc = Texp_ident (Path.Pident i, _, _); _ } ->
                          Ident.same i id
                      | _ -> false)
                    args
              | _ -> false)
          | Texp_sequence (_, b) -> reraises id b
          | Texp_let (_, _, body) -> reraises id body
          | Texp_ifthenelse (_, t, Some f) -> reraises id t && reraises id f
          | Texp_match (_, cs, _) ->
              cs <> [] && List.for_all (fun c -> reraises id c.c_rhs) cs
          | _ -> false
        in
        List.iter
          (fun c ->
            match (c.c_lhs.pat_desc, c.c_guard) with
            | Tpat_var (id, _), None when reraises id c.c_rhs -> ()
            | (Tpat_any | Tpat_var _), None ->
                report ctx Banned_construct c.c_lhs.pat_loc
                  "catch-all exception handler swallows failures; match \
                   specific exceptions"
            | _ -> ())
          cases;
        iter_children visit e
    | _ -> iter_children visit e
  in
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ e -> visit e) }
  in
  it.structure it tstr

(* ---- R2: capture analysis of parallel closures ------------------------ *)

(* Index expressions are classified relative to the chunk variables:

     Inv      chunk-invariant (same value in every chunk)
     Aff s    injective affine in a chunk variable, stride [s]
     Bounded b  for-var with invariant bounds [0, b]
     Safe     Aff (S_var n) + Bounded (b = n-1): disjoint strided slices
     Unknown  anything else

   A write to a captured array is proven disjoint when its index is
   [Aff _] or [Safe]: distinct chunk values address distinct cells
   (strides are assumed non-zero; a zero stride also makes the paired
   inner loop empty in the strided form). *)

type stride = S_one | S_lit of int | S_var of string
type bound = B_lit of int | B_var_minus1 of string
type ikind = Inv | Aff of stride | Bounded of bound | Safe | Unknown

type vclass =
  | Chunk_scalar (* closure parameter / chunk-derived int *)
  | Idx of ikind (* let/for-bound value with known index kind *)
  | Owned (* chunk-owned mutable: alias of captured.(chunk-index) *)
  | Local_mut (* mutable allocated inside the closure *)
  | Local (* any other closure-local binding *)

module Env = Map.Make (String)

type rclass = R_captured | R_owned | R_local

let race_pass ctx tstr =
  (* Module-level bindings of this unit: calls to them are argument-
     checked rather than treated as captured closures. *)
  let toplevel = Hashtbl.create 64 in
  let rec collect_items items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun n -> Hashtbl.replace toplevel n ())
                  (pattern_var_names vb.vb_pat))
              vbs
        | Tstr_module mb -> (
            match mb.mb_expr.mod_desc with
            | Tmod_structure s -> collect_items s.str_items
            | _ -> ())
        | _ -> ())
      items
  in
  collect_items tstr.str_items;
  let analyze_closure head_line closure =
    let reportr loc fmt = report ctx Domain_race ~anchor:head_line loc fmt in
    let class_of env id =
      match Env.find_opt (Ident.unique_name id) env with
      | Some c -> Some c
      | None -> None
    in
    let rec index_kind env e : ikind =
      match e.exp_desc with
      | Texp_constant (Const_int _) -> Inv
      | Texp_ident (Path.Pident id, _, _) -> (
          match class_of env id with
          | Some Chunk_scalar -> Aff S_one
          | Some (Idx k) -> k
          | Some (Owned | Local_mut | Local) -> Unknown
          | None -> Inv (* captured scalar: same value in every chunk *))
      | Texp_ident _ -> Inv
      | Texp_apply (hd, [ (_, Some a); (_, Some b) ]) -> (
          match ident_key hd with
          | Some (cu, ("+" | "-"), _) when cu = stdlib ->
              let ka = index_kind env a and kb = index_kind env b in
              let combine ka kb =
                match (ka, kb) with
                | Inv, Inv -> Inv
                | Aff s, Inv | Inv, Aff s -> Aff s
                | Aff (S_var v), Bounded (B_var_minus1 v') when v = v' -> Safe
                | Bounded (B_var_minus1 v'), Aff (S_var v) when v = v' -> Safe
                | Aff (S_lit n), Bounded (B_lit m) when m < n -> Safe
                | Bounded (B_lit m), Aff (S_lit n) when m < n -> Safe
                | Bounded _, Inv | Inv, Bounded _ -> Unknown
                | _ -> Unknown
              in
              combine ka kb
          | Some (cu, "*", _) when cu = stdlib -> (
              let ka = index_kind env a and kb = index_kind env b in
              let stride_of other =
                match other.exp_desc with
                | Texp_constant (Const_int n) when n <> 0 -> Some (S_lit n)
                | Texp_ident (Path.Pident id, _, _) -> (
                    match class_of env id with
                    | None | Some Local -> Some (S_var (Ident.unique_name id))
                    | _ -> None)
                | Texp_ident _ -> None
                | _ -> None
              in
              match (ka, kb) with
              | Aff S_one, Inv -> (
                  match stride_of b with Some s -> Aff s | None -> Unknown)
              | Inv, Aff S_one -> (
                  match stride_of a with Some s -> Aff s | None -> Unknown)
              | Inv, Inv -> Inv
              | _ -> Unknown)
          | _ -> Unknown)
      | _ -> Unknown
    in
    (* Syntactic bound of an upward for-loop: [v - 1] or a literal. *)
    let loop_bound env hi =
      match hi.exp_desc with
      | Texp_constant (Const_int n) -> Some (B_lit n)
      | Texp_apply (hd, [ (_, Some v); (_, Some one) ]) -> (
          match (ident_key hd, v.exp_desc, one.exp_desc) with
          | ( Some (cu, "-", _),
              Texp_ident (Path.Pident id, _, _),
              Texp_constant (Const_int 1) )
            when cu = stdlib -> (
              match class_of env id with
              | None | Some Local ->
                  Some (B_var_minus1 (Ident.unique_name id))
              | _ -> None)
          | _ -> None)
      | _ -> None
    in
    let rec root env e : rclass =
      match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> (
          match class_of env id with
          | None -> R_captured
          | Some Owned -> R_owned
          | Some _ -> R_local)
      | Texp_ident _ -> R_captured (* module-level / other-unit value *)
      | Texp_apply (hd, ((_, Some a) :: _ as args))
        when key_in
               [ ("Stdlib__Array", "get"); ("Stdlib__Array", "unsafe_get") ]
               hd -> (
          (* captured.(i): chunk-owned element when i is chunk-derived *)
          match (root env a, args) with
          | R_captured, [ _; (_, Some idx) ] -> (
              match index_kind env idx with
              | Aff _ | Safe -> R_owned
              | _ -> R_captured)
          | r, _ -> r)
      | Texp_field (b, _, _) -> root env b
      | _ -> R_local
    in
    let writes_proven env ~ofs ~len =
      match (index_kind env ofs, len) with
      | (Aff _ | Safe), None -> true
      | Aff (S_var v), Some l -> (
          match l.exp_desc with
          | Texp_ident (Path.Pident id, _, _) -> Ident.unique_name id = v
          | _ -> false)
      | Aff (S_lit n), Some l -> (
          match l.exp_desc with
          | Texp_constant (Const_int m) -> m <= n
          | _ -> false)
      | Aff S_one, Some l -> (
          match l.exp_desc with
          | Texp_constant (Const_int 1) -> true
          | _ -> false)
      | _ -> false
    in
    let read_only_ops =
      List.concat_map
        (fun m ->
          [ (m, "get"); (m, "unsafe_get"); (m, "length"); (m, "mem");
            (m, "exists"); (m, "for_all") ])
        [ "Stdlib__Array"; "Stdlib__Bytes"; "Stdlib__String"; "Stdlib__Float" ]
    in
    let write_ops =
      List.concat_map
        (fun m -> [ (m, "set"); (m, "unsafe_set"); (m, "fill"); (m, "blit") ])
        [ "Stdlib__Array"; "Stdlib__Bytes"; "Stdlib__Float" ]
    in
    let container_mutators =
      List.map (fun n -> ("Stdlib__Hashtbl", n))
        [ "add"; "replace"; "remove"; "reset"; "clear" ]
      @ List.map (fun n -> ("Stdlib__Buffer", n))
          [ "add_char"; "add_string"; "add_bytes"; "add_buffer"; "clear";
            "reset" ]
      @ List.map (fun n -> ("Stdlib__Queue", n)) [ "push"; "pop"; "add"; "take" ]
      @ List.map (fun n -> ("Stdlib__Stack", n)) [ "push"; "pop" ]
    in
    let is_alloc_rhs e =
      key_in
        (List.map (fun n -> ("Stdlib__Array", n))
           [ "make"; "create_float"; "init"; "copy"; "append"; "concat"; "sub";
             "make_matrix" ]
        @ [ (stdlib, "ref"); ("Stdlib__Buffer", "create");
            ("Stdlib__Bytes", "create"); ("Stdlib__Bytes", "make");
            ("Stdlib__Hashtbl", "create") ])
        e
    in
    let bind_local env pat =
      List.fold_left
        (fun env n -> Env.add n Local env)
        env (pattern_var_names pat)
    in
    let rec scan env e =
      match e.exp_desc with
      | Texp_let (_, vbs, body) ->
          List.iter (fun vb -> scan env vb.vb_expr) vbs;
          let env =
            List.fold_left
              (fun env' vb ->
                match pattern_var_names vb.vb_pat with
                | [ n ] ->
                    let cls =
                      match vb.vb_expr.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) -> (
                          match class_of env id with
                          | Some c -> c
                          | None -> Idx Unknown
                          (* alias of a captured value: writes through it
                             still need proof, so keep it "captured" by
                             not binding it at all *))
                      | Texp_apply (hd, _) when is_alloc_rhs hd -> Local_mut
                      | _ -> (
                          match root env vb.vb_expr with
                          | R_captured
                            when is_mutable_ty vb.vb_expr.exp_env
                                   vb.vb_expr.exp_type ->
                              Idx Unknown (* see alias note above *)
                          | R_owned -> Owned
                          | _ -> (
                              match index_kind env vb.vb_expr with
                              | Unknown -> Local
                              | k -> Idx k))
                    in
                    (* A captured alias must stay resolvable as captured:
                       leave it unbound instead of binding a lying class. *)
                    let is_captured_alias =
                      match vb.vb_expr.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) ->
                          class_of env id = None
                      | Texp_ident _ -> true
                      | _ ->
                          root env vb.vb_expr = R_captured
                          && is_mutable_ty vb.vb_expr.exp_env
                               vb.vb_expr.exp_type
                    in
                    if is_captured_alias then env'
                    else Env.add n cls env'
                | ns -> List.fold_left (fun e n -> Env.add n Local e) env' ns)
              env vbs
          in
          scan env body
      | Texp_for (id, _, lo, hi, dir, body) ->
          scan env lo;
          scan env hi;
          let var_kind =
            match dir with
            | Upto -> (
                let klo = index_kind env lo and khi = index_kind env hi in
                match (klo, khi) with
                | Aff S_one, (Aff S_one | Safe) ->
                    (* chunk slice bounds: var stays within this chunk *)
                    Aff S_one
                | Inv, _ -> (
                    match (lo.exp_desc, loop_bound env hi) with
                    | Texp_constant (Const_int 0), Some b -> Bounded b
                    | _ -> Inv)
                | _ -> Unknown)
            | Downto -> Unknown
          in
          scan (Env.add (Ident.unique_name id) (Idx var_kind) env) body
      | Texp_function { cases; _ } ->
          List.iter
            (fun c ->
              let env = bind_local env c.c_lhs in
              Option.iter (scan env) c.c_guard;
              scan env c.c_rhs)
            cases
      | Texp_match (scrut, cases, _) ->
          scan env scrut;
          List.iter
            (fun c ->
              let env =
                List.fold_left
                  (fun env n -> Env.add n Local env)
                  env
                  (List.map Ident.unique_name (pat_bound_idents c.c_lhs))
              in
              Option.iter (scan env) c.c_guard;
              scan env c.c_rhs)
            cases
      | Texp_try (body, cases) ->
          scan env body;
          List.iter
            (fun c ->
              let env = bind_local env c.c_lhs in
              Option.iter (scan env) c.c_guard;
              scan env c.c_rhs)
            cases
      | Texp_setfield (obj, _, lbl, v) ->
          scan env obj;
          scan env v;
          if root env obj = R_captured then
            reportr e.exp_loc
              "mutable field %s of captured value written inside parallel \
               closure"
              lbl.Types.lbl_name
      | Texp_apply (hd, args) -> (
          let arg_exprs = List.filter_map (fun (_, a) -> a) args in
          (* Local idents carry real uids (Item of the current unit), so a
             captured local function would otherwise dispatch into the
             module-call branch below; catch it first. *)
          let captured_local_head =
            match hd.exp_desc with
            | Texp_ident (Path.Pident id, _, _)
              when class_of env id = None
                   && not (Hashtbl.mem toplevel (Ident.unique_name id)) ->
                Some id
            | _ -> None
          in
          match captured_local_head with
          | Some id ->
              List.iter (scan env) arg_exprs;
              reportr e.exp_loc
                "call to captured closure %s: effects on shared state cannot \
                 be analyzed; waive with 'race' if disjoint"
                (Ident.name id)
          | None -> (
          match ident_key hd with
          | Some (cu, name, _) when List.mem (cu, name) write_ops -> (
              List.iter (scan env) arg_exprs;
              match (name, arg_exprs) with
              | ("set" | "unsafe_set"), arr :: idx :: _ ->
                  if root env arr = R_captured then
                    if not (writes_proven env ~ofs:idx ~len:None) then
                      reportr e.exp_loc
                        "write to captured array at an index not proven \
                         chunk-disjoint"
              | "fill", arr :: ofs :: len :: _ ->
                  if root env arr = R_captured then
                    if not (writes_proven env ~ofs ~len:(Some len)) then
                      reportr e.exp_loc
                        "fill on captured array: offset/length not proven \
                         chunk-disjoint"
              | "blit", _ :: _ :: dst :: dofs :: len :: _ ->
                  if root env dst = R_captured then
                    if not (writes_proven env ~ofs:dofs ~len:(Some len)) then
                      reportr e.exp_loc
                        "blit into captured array: offset/length not proven \
                         chunk-disjoint"
              | _ -> ())
          | Some (cu, (":=" | "incr" | "decr"), _)
            when cu = stdlib -> (
              List.iter (scan env) arg_exprs;
              match arg_exprs with
              | r :: _ when root env r = R_captured ->
                  reportr e.exp_loc
                    "captured ref cell mutated inside parallel closure"
              | _ -> ())
          | Some (cu, name, _) when List.mem (cu, name) container_mutators ->
              List.iter (scan env) arg_exprs;
              (match arg_exprs with
              | c :: _ when root env c = R_captured ->
                  reportr e.exp_loc
                    "shared container mutated (%s.%s) inside parallel closure"
                    cu name
              | _ -> ())
          | Some (cu, name, _) when cu = "Util__Metrics" ->
              List.iter (scan env) arg_exprs;
              reportr e.exp_loc
                "Util.Metrics.%s mutates the global metrics registry inside a \
                 parallel closure"
                name
          | Some (cu, name, _) when List.mem (cu, name) read_only_ops ->
              List.iter (scan env) arg_exprs
          | Some _ ->
              (* module-level or toplevel function: captured mutable
                 arguments may be written by the callee *)
              List.iter (scan env) arg_exprs;
              List.iter
                (fun a ->
                  if
                    is_mutable_ty a.exp_env a.exp_type
                    && root env a = R_captured
                  then
                    reportr a.exp_loc
                      "captured mutable value passed to %s inside parallel \
                       closure; prove disjointness or waive with 'race'"
                      (match ident_key hd with
                      | Some (_, _, p) -> Path.name p
                      | None -> "a call"))
                arg_exprs
          | None ->
              scan env hd;
              List.iter (scan env) arg_exprs))
      | Texp_ident (Path.Pident id, _, _) -> (
          (* a captured local function referenced (not at call head) *)
          match class_of env id with
          | None
            when (not (Hashtbl.mem toplevel (Ident.unique_name id)))
                 && (match Types.get_desc e.exp_type with
                    | Types.Tarrow _ -> true
                    | _ -> false) ->
              reportr e.exp_loc
                "captured closure %s escapes inside parallel closure"
                (Ident.name id)
          | _ -> ())
      | _ -> iter_children (scan env) e
    in
    (* Peel the closure's own parameter chain: every parameter of a
       Util.Parallel closure is chunk-derived (~chunk ~lo ~hi / index). *)
    let rec peel env e =
      match e.exp_desc with
      | Texp_function { cases = [ c ]; _ } ->
          let env =
            List.fold_left
              (fun env n -> Env.add n Chunk_scalar env)
              env
              (pattern_var_names c.c_lhs)
          in
          peel env c.c_rhs
      | _ -> scan env e
    in
    peel Env.empty closure
  in
  (* Locate parallel entry applications anywhere in the unit. *)
  let rec find e =
    (match e.exp_desc with
    | Texp_apply (hd, args) when key_in parallel_entries hd ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some ({ exp_desc = Texp_function _; _ } as f) ->
                let head_line = line_of f.exp_loc in
                ctx.race_closures <- head_line :: ctx.race_closures;
                analyze_closure head_line f
            | _ -> ())
          args
    | _ -> ());
    iter_children find e
  in
  let it = { Tast_iterator.default_iterator with expr = (fun _ e -> find e) } in
  it.structure it tstr

(* ---- R7: allocation discipline inside [@opera.hot] -------------------- *)

let hot_pass ctx tstr =
  let reporth loc fmt = report ctx Hot_alloc loc fmt in
  let is_ref_app e =
    match e.exp_desc with
    | Texp_apply (hd, _) -> (
        match ident_key hd with
        | Some (cu, "ref", _) -> cu = stdlib
        | _ -> false)
    | _ -> false
  in
  let rec scan e =
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        (* Two let-bound idioms the compiler eliminates are allowed:
           [let acc = ref e] (Simplif.eliminate_ref turns a
           non-escaping ref into a mutable variable) and
           [let helper args = ...] (simplify_local_functions turns a
           tail-called local function into a static jump).  The helper
           body is still scanned. *)
        List.iter scan_binding vbs;
        scan body
    | Texp_function _ ->
        reporth e.exp_loc
          "closure allocation inside [@opera.hot] body; hoist it out of the \
           hot path"
    | Texp_tuple _ -> reporth e.exp_loc "tuple allocation inside [@opera.hot]"
    | Texp_record _ ->
        reporth e.exp_loc "record allocation inside [@opera.hot]"
    | Texp_array [] -> ()
    | Texp_array _ ->
        reporth e.exp_loc "array literal allocation inside [@opera.hot]"
    | Texp_construct (lid, _, _ :: _) ->
        reporth e.exp_loc "constructor %s allocates inside [@opera.hot]"
          (String.concat "." (Longident.flatten lid.txt))
    | Texp_lazy _ -> reporth e.exp_loc "lazy allocation inside [@opera.hot]"
    | Texp_letop _ ->
        reporth e.exp_loc "binding operator allocates closures inside \
                           [@opera.hot]"
    | Texp_pack _ ->
        reporth e.exp_loc "first-class module allocation inside [@opera.hot]"
    | Texp_apply (hd, args) -> (
        (* Passing [~x:e] to an optional parameter elaborates to a
           compiler-inserted [Some e]: a boundary allocation at the
           call, not a per-element one — look through it to [e]. *)
        let arg_exprs =
          List.filter_map
            (fun ((lbl : Asttypes.arg_label), a) ->
              match a with
              | None -> None
              | Some a -> (
                  match (lbl, a.exp_desc) with
                  | Asttypes.Optional _, Texp_construct (_, _, [ inner ]) ->
                      Some inner
                  | _ -> Some a))
            args
        in
        match ident_key hd with
        | Some (cu, name, path) ->
            if List.mem (cu, name) raise_family then
              (* error path: allocation on raise is fine *) ()
            else if
              List.mem cu hot_scaffold_units
              || List.mem (cu, name) hot_scaffold
            then
              (* dispatch scaffolding: scan closure bodies, do not flag
                 the closures themselves *)
              List.iter
                (fun a ->
                  match a.exp_desc with
                  | Texp_function _ -> scan_fun_body a
                  | _ -> scan a)
                arg_exprs
            else begin
              if List.mem (cu, name) allocator_calls || List.mem cu alloc_units
              then
                reporth e.exp_loc "allocating call %s inside [@opera.hot]"
                  (Path.name path);
              (match Types.get_desc e.exp_type with
              | Types.Tarrow _ ->
                  reporth e.exp_loc
                    "partial application of %s allocates a closure inside \
                     [@opera.hot]"
                    (Path.name path)
              | _ -> ());
              List.iter scan arg_exprs
            end
        | None ->
            (match Types.get_desc e.exp_type with
            | Types.Tarrow _ ->
                reporth e.exp_loc
                  "partial application allocates a closure inside [@opera.hot]"
            | _ -> ());
            scan hd;
            List.iter scan arg_exprs)
    | _ -> iter_children scan e
  and scan_binding vb =
    match vb.vb_expr.exp_desc with
    | Texp_apply (_, args) when is_ref_app vb.vb_expr ->
        List.iter (fun (_, a) -> Option.iter scan a) args
    | Texp_function _ -> scan_fun_body vb.vb_expr
    | _ -> scan vb.vb_expr
  and scan_fun_body e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter scan c.c_guard;
            scan_fun_body c.c_rhs)
          cases
    | Texp_let
        (_, vbs, ({ exp_desc = Texp_function _ | Texp_let _; _ } as body)) ->
        (* optional-argument defaults elaborate to lets threaded
           between the curried parameter functions *)
        List.iter scan_binding vbs;
        scan_fun_body body
    | _ -> scan e
  in
  let hot_bindings = ref [] in
  let vb_it sub (vb : value_binding) =
    if has_attr "opera.hot" vb.vb_attributes then
      hot_bindings := vb.vb_expr :: !hot_bindings;
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let expr_it sub e =
    if has_attr "opera.hot" e.exp_attributes then
      hot_bindings := e :: !hot_bindings;
    Tast_iterator.default_iterator.expr sub e
  in
  let it =
    { Tast_iterator.default_iterator with value_binding = vb_it; expr = expr_it }
  in
  it.structure it tstr;
  List.iter scan_fun_body (List.rev !hot_bindings)

(* ---- R8: resource safety ---------------------------------------------- *)

let resource_pass ctx tstr =
  let handled : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let loc_key (loc : Location.t) = (line_of loc, col_of loc) in
  let is_open e =
    match e.exp_desc with
    | Texp_apply (hd, _) -> key_in open_calls hd
    | _ -> false
  in
  let is_protect_app e =
    match e.exp_desc with
    | Texp_apply (hd, _) -> key_in protect_key hd
    | _ -> false
  in
  let is_close_on var e =
    match e.exp_desc with
    | Texp_apply (hd, args) when key_in close_calls hd ->
        List.exists
          (fun (_, a) ->
            match a with
            | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ->
                Ident.unique_name id = var
            | _ -> false)
          args
    | _ -> false
  in
  (* [e] closes the resource on every exit, normal or exceptional:
     Fun.protect's finally runs before any surrounding handler or
     continuation, so a try whose body heads into protect is covered
     no matter what its handlers do. *)
  let rec guarded e =
    is_protect_app e
    ||
    match e.exp_desc with Texp_try (body, _) -> guarded body | _ -> false
  in
  (* Every result path of [e] must either head into Fun.protect or
     close [var] before producing its value. *)
  let rec closes_on_all_paths var e =
    if guarded e then true
    else
      match e.exp_desc with
      | Texp_let (_, vbs, body) ->
          List.exists (fun vb -> guarded vb.vb_expr) vbs
          || closes_on_all_paths var body
      | Texp_sequence (a, b) ->
          guarded a || is_close_on var a || closes_on_all_paths var b
      | Texp_ifthenelse (_, t, Some f) ->
          closes_on_all_paths var t && closes_on_all_paths var f
      | Texp_match (_, cases, _) ->
          cases <> []
          && List.for_all (fun c -> closes_on_all_paths var c.c_rhs) cases
      | Texp_try (body, cases) ->
          closes_on_all_paths var body
          && List.for_all (fun c -> closes_on_all_paths var c.c_rhs) cases
      | _ -> false
  in
  let case_pattern_var (c : _ case) =
    let names =
      match c.c_lhs.pat_desc with
      | Tpat_value p -> pattern_var_names (p :> pattern)
      | _ -> []
    in
    match names with [ n ] -> Some n | _ -> None
  in
  let rec visit e =
    (match e.exp_desc with
    | Texp_let (_, [ vb ], body) when is_open vb.vb_expr -> (
        Hashtbl.replace handled (loc_key vb.vb_expr.exp_loc) ();
        match pattern_var_names vb.vb_pat with
        | [ var ] ->
            if not (closes_on_all_paths var body) then
              report ctx Resource_safety vb.vb_expr.exp_loc
                "channel may stay open on an exceptional path; wrap the body \
                 in Fun.protect or close in every branch"
        | _ ->
            report ctx Resource_safety vb.vb_expr.exp_loc
              "channel bound by a non-trivial pattern cannot be tracked; use \
               Fun.protect")
    | Texp_match (scrut, cases, _) when is_open scrut ->
        Hashtbl.replace handled (loc_key scrut.exp_loc) ();
        List.iter
          (fun c ->
            match c.c_lhs.pat_desc with
            | Tpat_exception _ -> ()
            | _ -> (
                match case_pattern_var c with
                | Some var ->
                    if not (closes_on_all_paths var c.c_rhs) then
                      report ctx Resource_safety scrut.exp_loc
                        "channel may stay open on an exceptional path; wrap \
                         the branch in Fun.protect or close it everywhere"
                | None -> ()))
          cases
    | _ when is_open e ->
        if not (Hashtbl.mem handled (loc_key e.exp_loc)) then
          report ctx Resource_safety e.exp_loc
            "channel opened outside a let/match that guarantees close; bind \
             it locally under Fun.protect"
    | _ -> ());
    iter_children visit e
  in
  let it = { Tast_iterator.default_iterator with expr = (fun _ e -> visit e) } in
  it.structure it tstr

(* ---- entry point ------------------------------------------------------ *)

(* Run the typedtree passes for one file.  Returns findings (unwaived;
   waivers are applied by the engine, which owns the source text) and
   the head lines of the parallel closures seen by R2. *)
let run_passes cfg ~file ~is_exe (tstr : structure) :
    finding list * int list =
  let ctx =
    {
      cfg;
      file;
      base = Filename.basename file;
      is_exe;
      findings = [];
      race_closures = [];
    }
  in
  ident_checks ctx tstr;
  race_pass ctx tstr;
  hot_pass ctx tstr;
  resource_pass ctx tstr;
  let findings =
    List.sort_uniq compare (List.rev ctx.findings)
  in
  (findings, List.sort_uniq compare ctx.race_closures)
