(** Project map: recover dune's compilation model (unit names, alias
    opens, cmi load paths) so sources can be typechecked exactly as
    they are built. *)

type plan = {
  rel_path : string;  (** path relative to the project root *)
  unit_name : string;  (** mangled compilation unit, e.g. [Util__Parallel] *)
  alias_opens : string list;
      (** candidate generated alias modules; the first whose cmi loads
          reproduces dune's [-open] *)
  load_dirs : string list;  (** absolute cmi directories *)
  is_exe : bool;  (** module of an executable stanza *)
  mli_exists : bool;
}

type t

val scan : root:string -> t
(** Scan every [dune] file under [root] (skipping [_build] and dot
    directories) and build compilation plans for all stanza-owned
    modules. *)

val root : t -> string
(** Absolute project root the scan ran over. *)

val plan_for : t -> string -> plan option
(** [plan_for t rel] is the compilation plan of the source at
    root-relative path [rel], if some dune stanza owns it. *)

val orphan_plan : t -> rel_path:string -> plan
(** Plan for a source outside any stanza (test fixtures): standalone
    unit named after the file, able to see every library in the tree.
    Orphans are exempt from the missing-mli rule. *)
