(* In-process typechecking front-end.

   Rules run on the typedtree, so every identifier carries its resolved
   path and defining compilation unit: [=] at type [float] is caught
   through any alias, [Array.unsafe_get] through [module A = Array],
   and [Util.Parallel.for_chunks] however it is opened.

   compiler-libs keeps global state (load path, persistent-structure
   tables, current unit name), none of it domain-safe, so every
   typecheck is serialized under one mutex.  The surrounding engine
   parallelizes the pure per-file work (digesting, cache probes, rule
   passes over already-built typedtrees) instead. *)

type error = { err_line : int; err_col : int; err_msg : string }

type outcome =
  | Typed of Typedtree.structure
  | Parse_error of error
  | Type_error of error

let lock = Mutex.create ()

let initialized = ref false

let init_once () =
  if not !initialized then begin
    initialized := true;
    (* The lint reports findings, not compiler warnings: silence both
       the warning and alert channels before any typing happens. *)
    ignore (Warnings.parse_options false "-a");
    Location.warning_reporter := (fun _ _ -> None);
    Location.alert_reporter := (fun _ _ -> None)
  end

let error_of_exn exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
      let loc = report.Location.main.Location.loc in
      let pos = loc.Location.loc_start in
      let msg = Format.asprintf "%t" report.Location.main.Location.txt in
      let msg =
        String.concat " " (String.split_on_char '\n' msg |> List.map String.trim)
      in
      Some
        {
          err_line = pos.Lexing.pos_lnum;
          err_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
          err_msg = msg;
        }
  | Some `Already_displayed | None -> None

(* Typecheck [source] and run [k] on the outcome while still holding
   the compiler-libs lock: rule passes that consult the typing
   environment (e.g. [Ctype.expand_head] to see through [type t =
   float array] aliases) touch the same global tables the typechecker
   does, so they must not race with another domain's typecheck. *)
let analyze ~(plan : Lint_project.plan) (source : string) ~(k : outcome -> 'a) :
    'a =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      init_once ();
      Clflags.include_dirs := plan.Lint_project.load_dirs;
      Compmisc.init_path ();
      Env.reset_cache ();
      Env.set_unit_name plan.Lint_project.unit_name;
      Typecore.reset_delayed_checks ();
      let env = Compmisc.initial_env () in
      (* Reproduce dune's [-open] of the generated alias module; the
         first candidate whose cmi exists wins (a library with a
         hand-written main module generates [Lib__], one without
         generates [Lib]). *)
      let env =
        List.fold_left
          (fun acc m ->
            match acc with
            | Some _ -> acc
            | None -> (
                match Env.open_pers_signature m env with
                | Ok e -> Some e
                | Error `Not_found -> None
                | exception _ -> None))
          None plan.Lint_project.alias_opens
        |> Option.value ~default:env
      in
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf plan.Lint_project.rel_path;
      Location.input_name := plan.Lint_project.rel_path;
      match Parse.implementation lexbuf with
      | exception exn ->
          k
            (match error_of_exn exn with
            | Some e -> Parse_error e
            | None ->
                Parse_error
                  { err_line = 1; err_col = 0; err_msg = Printexc.to_string exn })
      | ast ->
          k
            (match Typemod.type_structure env ast with
            | tstr, _sig, _names, _shape, _env -> Typed tstr
            | exception ((Out_of_memory | Stack_overflow) as fatal) ->
                raise fatal
            | exception exn -> (
                match error_of_exn exn with
                | Some e -> Type_error e
                | None ->
                    Type_error
                      { err_line = 1; err_col = 0; err_msg = Printexc.to_string exn })))

let typecheck ~plan source = analyze ~plan source ~k:(fun o -> o)
