(* Project map for the typedtree front-end.

   opera-lint typechecks sources exactly the way dune compiles them:
   each module of a wrapped library [l] becomes compilation unit
   [L__Module] (the library's main module keeps the plain name), is
   compiled with the generated alias module opened, and resolves its
   dependencies against the cmi directories of the libraries it links.
   This module recovers that picture from the dune files themselves —
   a tiny s-expression scanner, not a build-system reimplementation —
   so the lint needs no hand-maintained manifest of the tree. *)

(* ---- minimal s-expressions ------------------------------------------- *)

type sexp = Atom of string | Sexps of sexp list

let parse_sexps (s : string) : sexp list =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        while !pos < n && s.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let atom_char c =
    match c with
    | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> false
    | _ -> true
  in
  let read_string () =
    (* opening quote consumed by caller *)
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> Buffer.contents b
      | Some '"' ->
          advance ();
          Buffer.contents b
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              advance ();
              Buffer.add_char b c
          | None -> ());
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let rec read_one () : sexp option =
    skip_ws ();
    match peek () with
    | None -> None
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | None -> ()
          | Some ')' -> advance ()
          | Some _ -> (
              match read_one () with
              | Some x ->
                  items := x :: !items;
                  loop ()
              | None -> ())
        in
        loop ();
        Some (Sexps (List.rev !items))
    | Some ')' ->
        advance ();
        read_one ()
    | Some '"' ->
        advance ();
        Some (Atom (read_string ()))
    | Some _ ->
        let start = !pos in
        while !pos < n && atom_char s.[!pos] do
          advance ()
        done;
        Some (Atom (String.sub s start (!pos - start)))
  in
  let out = ref [] in
  let rec all () =
    match read_one () with
    | Some x ->
        out := x :: !out;
        all ()
    | None -> ()
  in
  all ();
  List.rev !out

(* ---- dune stanzas ----------------------------------------------------- *)

type stanza = {
  stanza_kind : [ `Library | `Executable ];
  names : string list; (* library name, or executable name(s) *)
  libraries : string list;
  modules : string list option; (* lowercased module names; None = all in dir *)
}

let field name items =
  List.find_map
    (function Sexps (Atom f :: rest) when f = name -> Some rest | _ -> None)
    items

let atoms rest =
  List.filter_map (function Atom a -> Some a | Sexps _ -> None) rest

let stanzas_of_dune (source : string) : stanza list =
  parse_sexps source
  |> List.filter_map (function
       | Sexps (Atom kind :: items)
         when kind = "library" || kind = "executable" || kind = "executables"
         ->
           let get f = match field f items with Some r -> atoms r | None -> [] in
           let names =
             match kind with
             | "library" | "executable" -> get "name"
             | _ -> get "names"
           in
           let modules =
             match field "modules" items with
             | Some r -> Some (List.map String.lowercase_ascii (atoms r))
             | None -> None
           in
           if names = [] then None
           else
             Some
               {
                 stanza_kind = (if kind = "library" then `Library else `Executable);
                 names;
                 libraries = get "libraries";
                 modules;
               }
       | _ -> None)

(* ---- project scan ----------------------------------------------------- *)

type lib_info = {
  lib_name : string;
  lib_dir : string; (* relative to root *)
  lib_deps : string list; (* library names as written in dune *)
}

type plan = {
  rel_path : string;
  unit_name : string;
  alias_opens : string list; (* candidate alias modules, first that loads wins *)
  load_dirs : string list; (* absolute cmi directories *)
  is_exe : bool;
  mli_exists : bool;
}

type t = {
  root : string;
  build_root : string;
  stdlib_dir : string;
  libs : lib_info list;
  plans : (string, plan) Hashtbl.t; (* rel_path -> plan *)
  all_lib_dirs : string list; (* every resolvable cmi dir, for orphan sources *)
}

let capitalize = String.capitalize_ascii

let module_of_file file = String.lowercase_ascii (Filename.remove_extension file)

let ( / ) = Filename.concat

let is_dir d = Sys.file_exists d && Sys.is_directory d

let rec find_dune_dirs root rel acc =
  let abs = if rel = "" then root else root / rel in
  let acc =
    if Sys.file_exists (abs / "dune") then rel :: acc else acc
  in
  match Sys.readdir abs with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          if String.length entry > 0 && entry.[0] = '_' then acc
          else if String.length entry > 0 && entry.[0] = '.' then acc
          else
            let sub = if rel = "" then entry else rel / entry in
            if is_dir (root / sub) then find_dune_dirs root sub acc else acc)
        acc entries
  | exception Sys_error _ -> acc

let read_text path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* The build root is where the [.objs] cmi directories live.  Running
   from a checkout that has been built, that is [_build/default]; when
   the linter itself runs from inside [_build/default] (the hermetic
   [@lint] rule), the root already is the build root. *)
let find_build_root root =
  let candidate = root / "_build" / "default" in
  if is_dir candidate then candidate else root

let stdlib_dir () = Config.standard_library

(* [fmt] -> <opam-lib>/fmt, [bechamel.monotonic_clock] ->
   <opam-lib>/bechamel/monotonic_clock, [unix] -> <stdlib>/unix,
   [compiler-libs.common] -> <stdlib>/compiler-libs. *)
let resolve_external ~stdlib name =
  let libroot = Filename.dirname stdlib in
  let as_path root n = root / String.concat "/" (String.split_on_char '.' n) in
  let candidates =
    if String.length name >= 13 && String.sub name 0 13 = "compiler-libs" then
      [ stdlib / "compiler-libs" ]
    else [ as_path libroot name; as_path stdlib name ]
  in
  List.find_opt is_dir candidates

let objs_dir ~build_root ~dir ~lib = build_root / dir / ("." ^ lib ^ ".objs") / "byte"
let eobjs_dir ~build_root ~dir ~exe = build_root / dir / ("." ^ exe ^ ".eobjs") / "byte"

let scan ~root =
  let root =
    if Filename.is_relative root then Sys.getcwd () / root else root
  in
  let build_root = find_build_root root in
  let stdlib = stdlib_dir () in
  let dune_dirs = List.rev (find_dune_dirs root "" []) in
  let dir_stanzas =
    List.filter_map
      (fun dir ->
        match read_text (root / dir / "dune") with
        | None -> None
        | Some src -> Some (dir, stanzas_of_dune src))
      dune_dirs
  in
  let libs =
    List.concat_map
      (fun (dir, stanzas) ->
        List.filter_map
          (fun st ->
            match (st.stanza_kind, st.names) with
            | `Library, [ name ] ->
                Some { lib_name = name; lib_dir = dir; lib_deps = st.libraries }
            | _ -> None)
          stanzas)
      dir_stanzas
  in
  let lib_by_name = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace lib_by_name l.lib_name l) libs;
  (* cmi directories for a dependency list: internal libraries
     transitively, externals as leaf opam/stdlib directories. *)
  let closure_dirs deps =
    let seen = Hashtbl.create 16 in
    let dirs = ref [] in
    let add d = if not (List.mem d !dirs) then dirs := d :: !dirs in
    let rec visit name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.replace seen name ();
        match Hashtbl.find_opt lib_by_name name with
        | Some l ->
            add (objs_dir ~build_root ~dir:l.lib_dir ~lib:l.lib_name);
            List.iter visit l.lib_deps
        | None -> (
            match resolve_external ~stdlib name with
            | Some d -> add d
            | None -> ())
      end
    in
    List.iter visit deps;
    List.rev !dirs
  in
  let plans = Hashtbl.create 64 in
  let claim_plan rel plan =
    if not (Hashtbl.mem plans rel) then Hashtbl.replace plans rel plan
  in
  List.iter
    (fun (dir, stanzas) ->
      let files_here =
        match Sys.readdir (root / dir) with
        | files ->
            Array.to_list files
            |> List.filter (fun f -> Filename.check_suffix f ".ml")
            |> List.sort compare
        | exception Sys_error _ -> []
      in
      List.iter
        (fun st ->
          let owns file =
            match st.modules with
            | Some ms -> List.mem (module_of_file file) ms
            | None -> true
          in
          let owned = List.filter owns files_here in
          List.iter
            (fun file ->
              let rel = if dir = "" then file else dir / file in
              let modname = capitalize (module_of_file file) in
              let mli_exists =
                Sys.file_exists (root / dir / (Filename.remove_extension file ^ ".mli"))
              in
              match st.stanza_kind with
              | `Library ->
                  let lib = List.hd st.names in
                  let lib_mod = capitalize lib in
                  let unit_name, alias_opens =
                    if modname = lib_mod then (modname, [ lib_mod ^ "__" ])
                    else (lib_mod ^ "__" ^ modname, [ lib_mod ^ "__"; lib_mod ])
                  in
                  let load_dirs =
                    objs_dir ~build_root ~dir ~lib :: closure_dirs st.libraries
                  in
                  claim_plan rel
                    { rel_path = rel; unit_name; alias_opens; load_dirs;
                      is_exe = false; mli_exists }
              | `Executable ->
                  let exe = List.hd st.names in
                  let load_dirs =
                    eobjs_dir ~build_root ~dir ~exe :: closure_dirs st.libraries
                  in
                  claim_plan rel
                    { rel_path = rel;
                      unit_name = "Dune__exe__" ^ modname;
                      alias_opens = [ "Dune__exe__" ]; load_dirs;
                      is_exe = true; mli_exists })
            owned)
        stanzas)
    dir_stanzas;
  let all_lib_dirs =
    List.filter_map
      (fun l ->
        let d = objs_dir ~build_root ~dir:l.lib_dir ~lib:l.lib_name in
        if is_dir d then Some d else None)
      libs
    @ closure_dirs (List.concat_map (fun l -> l.lib_deps) libs)
  in
  { root; build_root; stdlib_dir = stdlib; libs; plans; all_lib_dirs }

let plan_for t rel = Hashtbl.find_opt t.plans rel

(* Sources outside any dune stanza (test fixtures, ad-hoc files): type
   them as a standalone unit that can see every library in the tree. *)
let orphan_plan t ~rel_path =
  let modname = capitalize (module_of_file (Filename.basename rel_path)) in
  {
    rel_path;
    unit_name = modname;
    alias_opens = [];
    load_dirs = t.all_lib_dirs;
    is_exe = false;
    mli_exists = true (* orphans are exempt from R5 *);
  }

let root t = t.root
