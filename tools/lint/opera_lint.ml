(* opera-lint: mli — executable entry point, no interface needed. *)
(* opera-lint CLI — see lint_engine.ml for the rule catalogue.

   Usage: opera_lint [--root DIR] [--json FILE] [--verbose] [--quiet]
                     [--no-mli] [PATH ...]

   PATHs (default: lib) are files or directories scanned recursively for
   .ml sources.  Exit code 1 iff any unwaived finding exists, 2 on usage
   errors. *)

let usage () =
  prerr_endline
    "usage: opera_lint [--root DIR] [--json FILE] [--verbose] [--quiet] [--no-mli] [PATH ...]";
  exit 2 (* opera-lint: banned *)

let () =
  let root = ref None in
  let json_out = ref None in
  let verbose = ref false in
  let quiet = ref false in
  let check_mli = ref true in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := Some dir;
        parse rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | "--no-mli" :: rest ->
        check_mli := false;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "opera_lint: unknown option %s\n" arg;
        usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !root with Some dir -> Sys.chdir dir | None -> ());
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "opera_lint: no such path %s\n" p;
        exit 2 (* opera-lint: banned *)
      end)
    paths;
  let cfg = { Lint_engine.default_config with check_mli = !check_mli } in
  let files_scanned, findings = Lint_engine.run cfg paths in
  (match !json_out with
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Lint_engine.json_report ~config:cfg ~files_scanned findings))
  | None -> ());
  if not !quiet then (* opera-lint: banned *)
    print_string (Lint_engine.human_report ~verbose:!verbose ~files_scanned findings);
  exit (Lint_engine.exit_code findings) (* opera-lint: banned *)
