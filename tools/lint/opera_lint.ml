(* opera-lint CLI: thin main over the Lint_engine library.

   All process concerns (argv, stdout, exit codes) live here, in the
   executable, so the library itself stays free of banned constructs
   (executable modules are exempt from R3's exit/print bans and R5).
   Exit codes: 0 clean (waived findings allowed), 1 unwaived findings,
   2 usage error. *)

let usage () =
  print_string
    "usage: opera_lint [options] [paths...]\n\
     Run the opera-lint rule catalogue (R1-R8) over OCaml sources.\n\
     Paths are directories or .ml files relative to the project root;\n\
     default: lib tools.\n\n\
     options:\n\
    \  --root DIR       project root (default: .)\n\
    \  --json FILE      write LINT_report.json v2 to FILE\n\
    \  --sarif FILE     write a SARIF 2.1.0 report to FILE\n\
    \  --cache-dir DIR  incremental cache directory\n\
    \                   (default: <root>/_build/lint-cache)\n\
    \  --no-cache       disable the incremental cache\n\
    \  --no-mli         disable the missing-mli rule (R5)\n\
    \  --verbose        also print waived findings\n\
    \  --quiet          print nothing; exit code only\n\
    \  --help           this message\n"

let () =
  let root = ref "." in
  let json_out = ref None in
  let sarif_out = ref None in
  let cache_dir = ref None in
  let use_cache = ref true in
  let verbose = ref false in
  let quiet = ref false in
  let check_mli = ref true in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | "--sarif" :: v :: rest ->
        sarif_out := Some v;
        parse rest
    | "--cache-dir" :: v :: rest ->
        cache_dir := Some v;
        parse rest
    | "--no-cache" :: rest ->
        use_cache := false;
        parse rest
    | "--no-mli" :: rest ->
        check_mli := false;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        prerr_endline ("opera_lint: unknown option " ^ arg);
        exit 2
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = match List.rev !paths with [] -> [ "lib"; "tools" ] | ps -> ps in
  List.iter
    (fun p ->
      if not (Sys.file_exists (Filename.concat !root p)) then begin
        prerr_endline ("opera_lint: no such path " ^ p);
        exit 2
      end)
    paths;
  let config = { Lint_engine.default_config with check_mli = !check_mli } in
  let cache_dir =
    if not !use_cache then None
    else
      match !cache_dir with
      | Some d -> Some d
      | None -> Some (Filename.concat !root "_build/lint-cache")
  in
  let result = Lint_engine.run ~config ?cache_dir ~root:!root paths in
  let { Lint_engine.files_scanned; findings; race; cache; timings } = result in
  (match !json_out with
  | Some file ->
      Util.Codec.write_file file
        (Lint_engine.json_report ~config ~files_scanned ~race ~cache ~timings
           findings)
  | None -> ());
  (match !sarif_out with
  | Some file -> Util.Codec.write_file file (Lint_engine.sarif_report findings)
  | None -> ());
  if not !quiet then
    print_string
      (Lint_engine.human_report ~verbose:!verbose ~files_scanned ~race ~cache
         findings);
  exit (Lint_engine.exit_code findings)
