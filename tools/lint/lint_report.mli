(** Report emitters: human text, LINT_report.json v2, SARIF 2.1.0. *)

type race_stats = { closures : int; proven : int; waived_closures : int }
type cache_stats = { hits : int; misses : int }

type timings = {
  total_s : float;
  typecheck_s : float;
  rules_s : float;
  cache_s : float;
}

val zero_race : race_stats
val zero_cache : cache_stats
val zero_timings : timings

val finding_order : Lint_rules.finding -> Lint_rules.finding -> int
(** Total order on findings: file, line, col, rule id, message. *)

type summary = {
  total : int;
  unwaived : int;
  waived : int;
  per_rule : (string * (int * int)) list;
      (** rule-id -> (unwaived, waived), in catalogue order *)
}

val summarize : Lint_rules.finding list -> summary
val exit_code : Lint_rules.finding list -> int

val human_report :
  ?verbose:bool ->
  files_scanned:int ->
  race:race_stats ->
  cache:cache_stats ->
  Lint_rules.finding list ->
  string

val json_report :
  ?config:Lint_rules.config ->
  files_scanned:int ->
  race:race_stats ->
  cache:cache_stats ->
  timings:timings ->
  Lint_rules.finding list ->
  string
(** LINT_report.json v2: deterministic except the timing block. *)

val sarif_report : Lint_rules.finding list -> string
(** SARIF 2.1.0 document (compact JSON); waived findings carry an
    in-source suppression and level "note". *)
