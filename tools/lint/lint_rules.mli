(** The opera-lint rule catalogue, run over typedtrees.

    R1 exact-float, R2 domain-race (capture analysis of Util.Parallel
    closures), R3 banned-construct, R4 unsafe-index, R5 missing-mli
    (engine-level), R6 determinism, R7 hot-alloc ([@opera.hot]),
    R8 resource-safety, plus unwaivable parse/type failures. *)

type rule =
  | Exact_float
  | Domain_race
  | Banned_construct
  | Unsafe_index
  | Missing_mli
  | Determinism
  | Hot_alloc
  | Resource_safety
  | Parse_failure
  | Type_failure

val rule_id : rule -> string
val rule_of_id : string -> rule option
val all_rules : rule list

val waiver_key : rule -> string option
(** Waiver comment key ([(* opera-lint: <key> *)]); [None] for
    unwaivable rules (parse/type failures). *)

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  anchor : int;
      (** for race findings, the head line of the parallel closure: a
          waiver there covers the whole closure; 0 = no anchor *)
  msg : string;
  waived : bool;
}

type config = {
  unsafe_allowlist : string list;
      (** basenames allowed to use [unsafe_get]/[unsafe_set] (R4) *)
  clock_allowlist : string list;
      (** basenames allowed raw wall-clock reads (R6) *)
  check_mli : bool;
}

val default_config : config

val catalogue_version : int
(** Bumped when rule behavior changes; part of the cache key. *)

val config_digest_input : config -> string
(** Canonical string fed into the rule-config digest. *)

val run_passes :
  config ->
  file:string ->
  is_exe:bool ->
  Typedtree.structure ->
  finding list * int list
(** Run the typedtree passes (R1-R4, R6-R8) over one unit.  Returns
    unwaived findings plus the head lines of every parallel closure R2
    analyzed (the engine derives proven/waived closure stats after
    waiver application). *)
