(** opera-lint v2: typedtree-driven, incrementally cached project lint.

    [run] maps every requested source onto its dune compilation plan,
    typechecks cache misses through compiler-libs, runs the rule
    passes, applies [(* opera-lint: <key> *)] waiver comments, and
    aggregates per-closure race statistics.  Per-file work fans out
    over the [Util.Parallel] worker pool. *)

module Rules = Lint_rules
module Project = Lint_project
module Typed = Lint_typed
module Cache = Lint_cache
module Report = Lint_report

type rule = Rules.rule =
  | Exact_float
  | Domain_race
  | Banned_construct
  | Unsafe_index
  | Missing_mli
  | Determinism
  | Hot_alloc
  | Resource_safety
  | Parse_failure
  | Type_failure

type finding = Rules.finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  anchor : int;
  msg : string;
  waived : bool;
}

type config = Rules.config = {
  unsafe_allowlist : string list;
  clock_allowlist : string list;
  check_mli : bool;
}

val default_config : config
val rule_id : rule -> string
val all_rules : rule list
val waiver_key : rule -> string option

val finding_order : finding -> finding -> int
val summarize : finding list -> Report.summary
val exit_code : finding list -> int

val human_report :
  ?verbose:bool ->
  files_scanned:int ->
  race:Report.race_stats ->
  cache:Report.cache_stats ->
  finding list ->
  string

val json_report :
  ?config:config ->
  files_scanned:int ->
  race:Report.race_stats ->
  cache:Report.cache_stats ->
  timings:Report.timings ->
  finding list ->
  string

val sarif_report : finding list -> string

val line_waives : string -> string -> bool
(** [line_waives line key]: does [line] carry an
    [(* opera-lint: ... *)] comment naming [key]? *)

val apply_waivers : string array -> finding list -> finding list
(** Waive findings whose line (or the line above, or for race findings
    the closure head line) carries the rule's waiver key. *)

val lint_source :
  config ->
  plan:Project.plan ->
  string ->
  finding list * int list * float * float
(** [lint_source cfg ~plan source] analyzes one source string without
    touching the cache: (findings after waivers, parallel-closure head
    lines, typecheck seconds, rule-pass seconds). *)

type run_result = {
  files_scanned : int;
  findings : finding list;
  race : Report.race_stats;
  cache : Report.cache_stats;
  timings : Report.timings;
}

val collect : root:string -> string list -> string list
(** Root-relative .ml files under the given paths, sorted, skipping
    [_build], dot directories, and [lint_fixtures]. *)

val run :
  ?config:config ->
  ?cache_dir:string ->
  ?root:string ->
  string list ->
  run_result
(** Lint the given root-relative paths. [root] defaults to ["."];
    omitting [cache_dir] disables the incremental cache. *)
