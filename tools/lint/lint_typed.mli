(** Typechecking front-end over compiler-libs.

    Drives [Parse.implementation] + [Typemod.type_structure] against
    the cmi load path of a {!Lint_project.plan}.  compiler-libs global
    state is not domain-safe, so calls are serialized internally under
    a mutex; callers may invoke this from any domain. *)

type error = { err_line : int; err_col : int; err_msg : string }

type outcome =
  | Typed of Typedtree.structure
  | Parse_error of error
  | Type_error of error

val analyze : plan:Lint_project.plan -> string -> k:(outcome -> 'a) -> 'a
(** [analyze ~plan source ~k] parses and typechecks [source] as the
    compilation unit described by [plan], then runs [k] on the outcome
    while still holding the compiler-libs lock.  Rule passes that
    consult the typing environment (type expansion) must run inside
    [k].  Never raises for malformed input; compiler diagnostics come
    back as [Parse_error] / [Type_error]. *)

val typecheck : plan:Lint_project.plan -> string -> outcome
(** [analyze] with the identity continuation.  The returned typedtree
    may be traversed freely, but environment-dependent queries on it
    are only safe inside [analyze]'s [k]. *)
