(* Incremental lint cache.

   One [Util.Codec] frame per analyzed source file, named by a digest
   of its project-relative path, keyed inside by (source digest,
   rule-config digest).  A probe hits only when both digests match, so
   editing a file re-analyzes exactly that file and changing the rule
   configuration (or the catalogue version baked into the config
   digest) re-analyzes everything.

   The codec layer already gives the crash-safety story: frames are
   checksummed, written atomically (temp + rename), and any torn or
   truncated entry surfaces as [Util.Codec.Corrupt] on probe, which we
   treat as a miss and rebuild. *)

type entry = {
  findings : Lint_rules.finding list;
  race_closures : int list; (* head lines of R2-analyzed closures *)
}

let kind = "lint"
let version = 2

let digest s = Digest.to_hex (Digest.string s)

let file_for ~dir ~rel_path =
  Filename.concat dir ("lint-" ^ digest rel_path ^ ".opra")

let ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    (* parents first: _build/lint-cache needs _build *)
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      (try Sys.mkdir parent 0o755 with Sys_error _ -> ());
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_finding e (f : Lint_rules.finding) =
  Util.Codec.write_string e (Lint_rules.rule_id f.rule);
  Util.Codec.write_string e f.file;
  Util.Codec.write_int e f.line;
  Util.Codec.write_int e f.col;
  Util.Codec.write_int e f.anchor;
  Util.Codec.write_string e f.msg;
  Util.Codec.write_bool e f.waived

let read_finding d : Lint_rules.finding =
  let rule_id = Util.Codec.read_string d in
  let rule =
    match Lint_rules.rule_of_id rule_id with
    | Some r -> r
    | None ->
        raise (Util.Codec.Corrupt (Printf.sprintf "unknown rule id %S" rule_id))
  in
  let file = Util.Codec.read_string d in
  let line = Util.Codec.read_int d in
  let col = Util.Codec.read_int d in
  let anchor = Util.Codec.read_int d in
  let msg = Util.Codec.read_string d in
  let waived = Util.Codec.read_bool d in
  { rule; file; line; col; anchor; msg; waived }

let encode ~src_digest ~cfg_digest entry =
  Util.Codec.frame ~kind ~version (fun e ->
      Util.Codec.write_string e src_digest;
      Util.Codec.write_string e cfg_digest;
      Util.Codec.write_int e (List.length entry.findings);
      List.iter (write_finding e) entry.findings;
      Util.Codec.write_int e (List.length entry.race_closures);
      List.iter (Util.Codec.write_int e) entry.race_closures)

let decode ~src_digest ~cfg_digest bytes =
  let d = Util.Codec.unframe ~kind ~version bytes in
  let stored_src = Util.Codec.read_string d in
  let stored_cfg = Util.Codec.read_string d in
  if stored_src <> src_digest || stored_cfg <> cfg_digest then None
  else begin
    let n = Util.Codec.read_int d in
    if n < 0 || n > Util.Codec.remaining d then
      raise (Util.Codec.Corrupt "finding count out of range");
    let findings = List.init n (fun _ -> read_finding d) in
    let m = Util.Codec.read_int d in
    if m < 0 || m > Util.Codec.remaining d then
      raise (Util.Codec.Corrupt "closure count out of range");
    let race_closures = List.init m (fun _ -> Util.Codec.read_int d) in
    Util.Codec.expect_end d;
    Some { findings; race_closures }
  end

(* A probe never raises: torn/corrupt/stale entries are misses (and
   removed, so the rebuilt entry replaces them). *)
let load ~dir ~rel_path ~src_digest ~cfg_digest : entry option =
  let file = file_for ~dir ~rel_path in
  match Util.Codec.read_file file with
  | None -> None
  | Some bytes -> (
      match decode ~src_digest ~cfg_digest bytes with
      | entry -> entry
      | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
      | exception _ ->
          (try Sys.remove file with Sys_error _ -> ());
          None)
  | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
  | exception _ ->
      (try Sys.remove file with Sys_error _ -> ());
      None

let store ~dir ~rel_path ~src_digest ~cfg_digest entry =
  ensure_dir dir;
  let bytes = encode ~src_digest ~cfg_digest entry in
  try Util.Codec.write_file (file_for ~dir ~rel_path) bytes
  with Sys_error _ -> ()
